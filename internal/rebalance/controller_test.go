package rebalance

import (
	"testing"
	"time"

	"vodcluster/internal/core"
	"vodcluster/internal/place"
	"vodcluster/internal/replicate"
	"vodcluster/internal/serve"
)

// testServer builds a live daemon over a small planned layout: 12 videos,
// 4 servers with room for a few extra replicas each, a backbone for copies.
func testServer(t *testing.T) *serve.Server {
	t.Helper()
	c, err := core.NewCatalog(12, 1.0, 4*core.Mbps, 90*core.Minute)
	if err != nil {
		t.Fatal(err)
	}
	p := &core.Problem{
		Catalog:            c,
		NumServers:         4,
		StoragePerServer:   7 * c[0].SizeBytes(),
		BandwidthPerServer: 40 * core.Mbps,
		ArrivalRate:        2.0 / core.Minute,
		PeakPeriod:         90 * core.Minute,
		BackboneBandwidth:  core.Gbps,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	budget, err := p.TargetTotalReplicas(1.5)
	if err != nil {
		t.Fatal(err)
	}
	r, err := replicate.BoundedAdams{}.Replicate(p, budget)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := place.SmallestLoadFirst{}.Place(p, r)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(p, layout, serve.Config{Compress: 1800})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Shutdown)
	return srv
}

func TestNewValidatesConfig(t *testing.T) {
	srv := testServer(t)
	if _, err := New(srv, Config{Interval: -1}); err == nil {
		t.Fatal("negative interval accepted")
	}
	if _, err := New(srv, Config{Decay: 1.5}); err == nil {
		t.Fatal("decay >= 1 accepted")
	}
	if _, err := New(srv, Config{Budget: -1}); err == nil {
		t.Fatal("negative budget accepted")
	}
	ctl, err := New(srv, Config{})
	if err != nil {
		t.Fatal(err)
	}
	st := ctl.Status()
	if !st.Enabled || st.LayoutVersion != 1 || st.Rounds != 0 {
		t.Fatalf("fresh status %+v", st)
	}
}

// TestControllerMigratesTowardObservedDemand drives the full pipeline:
// a skewed admission stream, a triggered round, an incremental re-anneal,
// and migration copies landing as new replicas — under the bandwidth budget
// and with the layout version advancing.
func TestControllerMigratesTowardObservedDemand(t *testing.T) {
	srv := testServer(t)
	cl := srv.Cluster()
	const budget = 400 * core.Mbps
	ctl, err := New(srv, Config{
		Interval:         300,
		MinObserved:      10,
		AnnealSteps:      3000,
		CopyRate:         200 * core.Mbps,
		Budget:           budget,
		MaxMovesPerRound: 4,
		Seed:             7,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl.Start()
	if srv.Rebalancer() == nil {
		t.Fatal("Start did not attach the controller")
	}

	before := 0
	for v := 0; v < cl.Videos(); v++ {
		before += len(cl.Holders(v))
	}

	// The cold tail suddenly takes the traffic: observe a strong shift and
	// keep the signal alive across decay while polling for migrations.
	hot := cl.Videos() - 1
	deadline := time.Now().Add(15 * time.Second)
	for ctl.Migrations() == 0 && time.Now().Before(deadline) {
		for i := 0; i < 300; i++ {
			ctl.Observe(hot)
		}
		for i := 0; i < 60; i++ {
			ctl.Observe(i % cl.Videos())
		}
		ctl.Trigger()
		time.Sleep(150 * time.Millisecond)
	}
	if ctl.Migrations() == 0 {
		t.Fatalf("no migrations landed; status %+v", ctl.Status())
	}
	if ctl.Rounds() == 0 {
		t.Fatal("migrations without a completed round")
	}
	if got := cl.LayoutVersion(); got <= 1 {
		t.Fatalf("layout version %d did not advance", got)
	}
	if peak := ctl.PeakCopyRate(); peak > budget+1e-6 {
		t.Fatalf("peak copy rate %g exceeded budget %g", peak, budget)
	}
	after := 0
	for v := 0; v < cl.Videos(); v++ {
		after += len(cl.Holders(v))
	}
	if after <= before && ctl.Evictions() == 0 {
		t.Fatalf("replica count did not move: %d -> %d", before, after)
	}
	found := false
	for _, a := range ctl.Journal() {
		if a.Action == "copy-complete" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("journal has no completed copy")
	}
	// Stop is idempotent and leaves no goroutines behind (the race detector
	// and t.Cleanup(srv.Shutdown) audit the rest).
	ctl.Stop()
	ctl.Stop()
}

// TestControllerSkipsWithoutSignal pins the quiet-cluster behavior: a
// triggered round with almost no observations must not touch the layout.
func TestControllerSkipsWithoutSignal(t *testing.T) {
	srv := testServer(t)
	ctl, err := New(srv, Config{MinObserved: 1000, Interval: 3600})
	if err != nil {
		t.Fatal(err)
	}
	ctl.Start()
	ctl.Observe(0)
	ctl.Trigger()
	time.Sleep(200 * time.Millisecond)
	if ctl.Rounds() != 0 || ctl.Migrations() != 0 {
		t.Fatalf("controller acted on %g observations: %+v", 1.0, ctl.Status())
	}
	if ctl.Skipped() == 0 {
		t.Fatal("skipped round not counted")
	}
	if got := srv.Cluster().LayoutVersion(); got != 1 {
		t.Fatalf("layout version moved to %d on a skipped round", got)
	}
	ctl.Stop()
}
