package rebalance

import (
	"sort"

	"vodcluster/internal/anneal"
	"vodcluster/internal/demand"
)

// Move is one step of a migration plan: land a new replica of Video on
// Server (add) or remove a surplus one (evict).
type Move struct {
	Video  int
	Server int
	// Heat is the video's decayed demand count at planning time; adds
	// execute hottest-first so the copies the shifted workload needs most
	// land first under a tight bandwidth budget.
	Heat float64
	// attempts counts pump cycles the move has been deferred (pinned
	// sessions, storage waiting on an eviction); the executor abandons a
	// move that stalls too long rather than blocking the plan forever.
	attempts int
}

// Plan is an ordered migration plan: the diff between the layout being
// served and a re-annealed target. Adds come before evictions for the same
// video — a video's availability never dips below what it had — and the
// executor additionally orders adds hottest-first and keeps every step
// storage-feasible, waiting on a same-server eviction when the destination
// is full.
type Plan struct {
	Adds   []Move
	Evicts []Move
}

// Pending returns the number of moves not yet executed.
func (p *Plan) Pending() int { return len(p.Adds) + len(p.Evicts) }

// diffPlan builds the migration plan taking the live holder sets (by video)
// to the annealed layout (by rank). ranked maps rank → video and carries the
// heat ordering; maxMoves caps each move class per round. Evictions of a
// video whose adds were truncated by the cap are dropped too: evicting
// before every planned add has landed could shrink the video's replica set
// below both the old and the new layout.
func diffPlan(live [][]int, best *anneal.BitRateLayout, ranked []demand.Ranked, counts []float64, maxMoves int) *Plan {
	plan := &Plan{}
	truncated := make(map[int]bool)
	var adds, evicts []Move
	for rank, r := range ranked {
		v := r.Video
		inLive := make(map[int]bool, len(live[v]))
		for _, s := range live[v] {
			inLive[s] = true
		}
		for s, ri := range best.RateIdx[rank] {
			if ri >= 0 && !inLive[s] {
				adds = append(adds, Move{Video: v, Server: s, Heat: counts[v]})
			}
		}
		for _, s := range live[v] {
			if best.RateIdx[rank][s] < 0 {
				evicts = append(evicts, Move{Video: v, Server: s, Heat: counts[v]})
			}
		}
	}
	// Hottest adds first; ties by video then server for determinism.
	sort.Slice(adds, func(i, j int) bool {
		if adds[i].Heat != adds[j].Heat {
			return adds[i].Heat > adds[j].Heat
		}
		if adds[i].Video != adds[j].Video {
			return adds[i].Video < adds[j].Video
		}
		return adds[i].Server < adds[j].Server
	})
	if len(adds) > maxMoves {
		for _, m := range adds[maxMoves:] {
			truncated[m.Video] = true
		}
		adds = adds[:maxMoves]
	}
	// Coldest evictions first: free the storage the cold tail no longer
	// earns before touching warmer videos.
	sort.Slice(evicts, func(i, j int) bool {
		if evicts[i].Heat != evicts[j].Heat {
			return evicts[i].Heat < evicts[j].Heat
		}
		if evicts[i].Video != evicts[j].Video {
			return evicts[i].Video < evicts[j].Video
		}
		return evicts[i].Server < evicts[j].Server
	})
	kept := evicts[:0]
	for _, m := range evicts {
		if !truncated[m.Video] {
			kept = append(kept, m)
		}
	}
	if len(kept) > maxMoves {
		kept = kept[:maxMoves]
	}
	plan.Adds, plan.Evicts = adds, kept
	return plan
}

// hasEvictOn reports whether the plan still holds an eviction on server s —
// the signal a storage-blocked add waits on instead of being dropped.
func (p *Plan) hasEvictOn(s int) bool {
	for _, m := range p.Evicts {
		if m.Server == s {
			return true
		}
	}
	return false
}
