// Package rebalance closes the control loop the paper's conclusion asks
// for: it pairs the conservative offline placement (§4.3) with runtime
// re-optimization. A background Controller watches the live admission
// stream, re-estimates per-video popularity with the shared decayed-demand
// estimator (internal/demand), periodically re-anneals the layout
// incrementally — seeding the delta-evaluated annealer from the layout
// currently being served so short schedules converge — diffs old-vs-new
// layouts into an ordered migration plan (adds before evictions,
// storage-feasible at every step, never touching a replica with pinned
// sessions), and executes the plan through the live copy machinery under a
// configurable bandwidth budget.
package rebalance

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"vodcluster/internal/anneal"
	"vodcluster/internal/core"
	"vodcluster/internal/demand"
	"vodcluster/internal/serve"
)

// Config tunes the live placement controller. All durations are virtual
// seconds, divided by the daemon's compression factor for wall clocks, so a
// compressed drill rebalances on the same virtual schedule a real deployment
// would.
type Config struct {
	// Interval is the control-round cadence in virtual seconds (default 300).
	Interval float64
	// Decay multiplies the demand counters each round (default 0.5).
	Decay float64
	// MinObserved is the decayed observation mass below which a round skips
	// re-annealing — too little signal to trust (default 50).
	MinObserved float64
	// AnnealSteps bounds the incremental re-anneal per round (default 4000).
	// Short schedules work because each anneal is seeded from the layout
	// currently being served, not from scratch.
	AnnealSteps int
	// InitialTemp is the annealing start temperature (default 0.05 — low, so
	// the seeded layout is refined rather than scrambled).
	InitialTemp float64
	// CopyRate is the bandwidth one in-flight migration consumes, bits/s
	// (default 200 Mb/s), reserved on the backbone when the problem defines
	// one, else on the source's outgoing link.
	CopyRate float64
	// Budget caps the total bits/s of concurrent migration copies; 0 means
	// no cap beyond the per-copy reservations.
	Budget float64
	// MaxMovesPerRound caps adds and evictions per plan (default 8 each).
	MaxMovesPerRound int
	// MaxStalls is how many pump cycles a deferred move (pinned sessions,
	// storage waiting on an eviction) survives before being abandoned
	// (default 16).
	MaxStalls int
	// Seed derives the per-round annealing RNG streams (default 1).
	Seed int64
}

// withDefaults fills zero-valued tunables.
func (c Config) withDefaults() Config {
	if c.Interval == 0 {
		c.Interval = 300
	}
	if c.Decay == 0 {
		c.Decay = 0.5
	}
	if c.MinObserved == 0 {
		c.MinObserved = 50
	}
	if c.AnnealSteps == 0 {
		c.AnnealSteps = 4000
	}
	if c.InitialTemp == 0 {
		c.InitialTemp = 0.05
	}
	if c.CopyRate == 0 {
		c.CopyRate = 200 * core.Mbps
	}
	if c.MaxMovesPerRound == 0 {
		c.MaxMovesPerRound = 8
	}
	if c.MaxStalls == 0 {
		c.MaxStalls = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Controller is the live placement control loop: estimate demand from the
// admission stream, re-anneal the layout incrementally, diff into a
// migration plan, and execute the plan through the serve layer's copy and
// eviction machinery under the bandwidth budget. Attach with
// serve.Server.AttachRebalancer and call Start.
type Controller struct {
	srv *serve.Server
	cfg Config
	est *demand.Estimator

	rateSet []float64 // singleton: the catalog's fixed encoding rate

	kick chan struct{} // coalesced Trigger requests
	pump chan struct{} // coalesced copy-completion signals

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
	copies   sync.WaitGroup

	mu           sync.Mutex
	plan         *Plan // nil when no round is draining
	inflight     map[int]bool
	inflightRate float64
	peakRate     float64
	journal      []serve.RebalanceAction

	round      atomic.Int64 // completed re-anneal rounds
	migrations atomic.Int64
	evictions  atomic.Int64
	deferred   atomic.Int64
	skipped    atomic.Int64
}

// maxJournal bounds the kept journal; the oldest half is discarded beyond it.
const maxJournal = 4096

// New builds a controller for srv. The problem must carry a fixed encoding
// bit rate: the live admission path charges the catalog rate, so the
// re-anneal searches placement only (a singleton rate set), never quality.
// The controller is created stopped and detached; call Start, which also
// attaches it to srv.
func New(srv *serve.Server, cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	if cfg.Interval <= 0 || cfg.Decay < 0 || cfg.Decay >= 1 || cfg.MinObserved < 0 ||
		cfg.AnnealSteps < 1 || cfg.InitialTemp <= 0 || cfg.CopyRate <= 0 ||
		cfg.Budget < 0 || cfg.MaxMovesPerRound < 1 || cfg.MaxStalls < 1 {
		return nil, fmt.Errorf("rebalance: invalid config %+v", cfg)
	}
	p := srv.Cluster().Problem()
	rate, ok := p.Catalog.FixedBitRate()
	if !ok {
		return nil, fmt.Errorf("rebalance: catalog has mixed bit rates; the live rebalancer needs a fixed-rate catalog")
	}
	est, err := demand.NewEstimator(p.M(), cfg.Decay)
	if err != nil {
		return nil, err
	}
	return &Controller{
		srv:      srv,
		cfg:      cfg,
		est:      est,
		rateSet:  []float64{rate},
		kick:     make(chan struct{}, 1),
		pump:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		inflight: make(map[int]bool),
	}, nil
}

// Config returns the controller's effective (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// Observe implements serve.Rebalancer: one admission-path demand sample.
func (c *Controller) Observe(video int) { c.est.Observe(video) }

// Trigger implements serve.Rebalancer: request an immediate round.
func (c *Controller) Trigger() bool {
	select {
	case c.kick <- struct{}{}:
		return true
	default:
		return true // a round is already pending; the kick coalesces
	}
}

// Rounds returns the number of completed re-anneal rounds.
func (c *Controller) Rounds() int64 { return c.round.Load() }

// Migrations returns the number of migration copies landed as replicas.
func (c *Controller) Migrations() int64 { return c.migrations.Load() }

// Evictions returns the number of surplus replicas removed.
func (c *Controller) Evictions() int64 { return c.evictions.Load() }

// Skipped returns rounds abandoned for lack of signal or improvement.
func (c *Controller) Skipped() int64 { return c.skipped.Load() }

// PeakCopyRate returns the high-water mark of concurrent migration
// bandwidth in bits/s — what Budget bounds when configured.
func (c *Controller) PeakCopyRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peakRate
}

// Status implements serve.Rebalancer.
func (c *Controller) Status() serve.RebalanceStatus {
	c.mu.Lock()
	pending := 0
	if c.plan != nil {
		pending = c.plan.Pending()
	}
	inflight := len(c.inflight)
	peak := c.peakRate
	journal := append([]serve.RebalanceAction(nil), c.journal...)
	c.mu.Unlock()
	return serve.RebalanceStatus{
		Enabled:         true,
		LayoutVersion:   c.srv.Cluster().LayoutVersion(),
		Rounds:          c.round.Load(),
		Migrations:      c.migrations.Load(),
		Evictions:       c.evictions.Load(),
		Deferred:        c.deferred.Load(),
		Skipped:         c.skipped.Load(),
		Inflight:        inflight,
		PendingMoves:    pending,
		PeakCopyRateBps: peak,
		Journal:         journal,
	}
}

// Start attaches the controller to its server and launches the control loop.
func (c *Controller) Start() {
	c.srv.AttachRebalancer(c)
	go func() {
		defer close(c.done)
		wall := time.Duration(c.cfg.Interval / c.srv.Compress() * float64(time.Second))
		tick := time.NewTicker(wall)
		defer tick.Stop()
		// The retry ticker re-pumps a draining plan between rounds so
		// deferred moves (pinned sessions draining out) retry promptly.
		retry := time.NewTicker(wall / 4)
		defer retry.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-c.kick:
				c.runRound()
			case <-tick.C:
				c.runRound()
			case <-c.pump:
				c.advance()
			case <-retry.C:
				if c.pending() > 0 {
					c.advance()
				}
			}
		}
	}()
}

// Stop implements serve.Rebalancer: terminate the loop, abort in-flight
// copies, and wait for everything to wind down.
func (c *Controller) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
	c.copies.Wait()
}

// pending returns the number of unexecuted plan moves.
func (c *Controller) pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.plan == nil {
		return 0
	}
	return c.plan.Pending()
}

// runRound is one control round: drain the current plan if one is still
// open, otherwise re-estimate, re-anneal, and diff a new plan.
func (c *Controller) runRound() {
	if c.pending() > 0 || c.Inflight() > 0 {
		c.advance() // never stack plans; finish the open one first
		return
	}
	plan, ok := c.reanneal()
	if !ok {
		return
	}
	c.mu.Lock()
	c.plan = plan
	c.mu.Unlock()
	c.round.Add(1)
	c.srv.Metrics().RebalanceRound()
	c.advance()
}

// Inflight returns the number of migration copies currently in flight.
func (c *Controller) Inflight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.inflight)
}

// reanneal runs the incremental re-optimization: a shadow problem in rank
// space (the catalog invariant wants popularity sorted non-increasing, so
// videos are re-indexed by empirical rank), a seed layout mirroring the
// holders currently serving, and a short low-temperature anneal. It returns
// no plan when there is too little signal, the anneal found nothing
// strictly better, or the result is infeasible.
func (c *Controller) reanneal() (*Plan, bool) {
	counts := c.est.Snapshot()
	defer c.est.Decay()
	total := 0.0
	for _, n := range counts {
		total += n
	}
	if total < c.cfg.MinObserved {
		c.skipped.Add(1)
		return nil, false
	}
	cl := c.srv.Cluster()
	p := cl.Problem()
	m := p.M()

	// Empirical popularity with add-one smoothing, ranked into shadow space.
	pops := make([]float64, m)
	denom := total + float64(m)
	for v, n := range counts {
		pops[v] = (n + 1) / denom
	}
	ranked := demand.RankByPopularity(pops)
	shadow := p.Clone()
	for rank := range shadow.Catalog {
		shadow.Catalog[rank].ID = rank
		shadow.Catalog[rank].Popularity = ranked[rank].Pop
	}
	// Under aggregate overload every layout violates the Eq. 6 bandwidth
	// constraint and the anneal's repair strips copies back to singletons, so
	// no feasible improvement ever appears — exactly when rebalancing matters
	// most. Scale the shadow's arrival rate until peak demand fits inside the
	// cluster: the popularity shape, which is what placement responds to, is
	// unchanged by a uniform scaling.
	if peakDemand := shadow.PeakRequests() * c.rateSet[0]; peakDemand > 0.95*shadow.TotalBandwidth() {
		shadow.ArrivalRate *= 0.95 * shadow.TotalBandwidth() / peakDemand
	}
	bp := &anneal.BitRateProblem{P: shadow, RateSet: c.rateSet}
	if err := bp.Validate(); err != nil {
		c.skipped.Add(1)
		c.log(serve.RebalanceAction{TimeNS: c.srv.Tracer().NowNS(), Action: "skip", Detail: err.Error()})
		return nil, false
	}

	// Seed from the layout being served: rank r's row mirrors the live
	// holders of the video ranked r. Degraded directories (a down backend's
	// copies are still listed) seed as-is; the anneal sees their demand.
	live := make([][]int, m)
	seed := anneal.NewBitRateLayout(m, p.N())
	for rank, r := range ranked {
		live[r.Video] = append([]int(nil), cl.Holders(r.Video)...)
		for _, s := range live[r.Video] {
			seed.RateIdx[rank][s] = 0
		}
	}
	seedCost := bp.Cost(seed)

	opts := anneal.Options{
		InitialTemp:  c.cfg.InitialTemp,
		Cooling:      0.9,
		PlateauSteps: 100,
		MinTemp:      1e-4,
		MaxSteps:     c.cfg.AnnealSteps,
		Seed:         c.cfg.Seed + c.round.Load(),
	}
	res, err := anneal.Minimize[*anneal.BitRateLayout](bp, seed, opts)
	if err != nil {
		c.skipped.Add(1)
		c.log(serve.RebalanceAction{TimeNS: c.srv.Tracer().NowNS(), Action: "skip", Detail: err.Error()})
		return nil, false
	}
	// Accept only physically realizable improvements: no orphaned videos, no
	// storage over-commit, and a strictly better cost than the layout being
	// served. Residual bandwidth violation is tolerated — it means demand is
	// too concentrated for any layout to absorb, the admission controller
	// sheds the excess, and the penalty term in the cost already rewards the
	// layouts that shed least.
	ev := bp.Evaluate(res.Best)
	if ev.Orphans != 0 || ev.StorageViolation != 0 || res.BestCost >= seedCost-1e-12 {
		c.skipped.Add(1)
		c.log(serve.RebalanceAction{TimeNS: c.srv.Tracer().NowNS(), Action: "skip",
			Detail: fmt.Sprintf("no realizable improvement (seed %.6g, best %.6g)", seedCost, res.BestCost)})
		return nil, false
	}
	plan := diffPlan(live, res.Best, ranked, counts, c.cfg.MaxMovesPerRound)
	c.log(serve.RebalanceAction{TimeNS: c.srv.Tracer().NowNS(), Action: "plan",
		Detail: fmt.Sprintf("%d adds, %d evicts (cost %.6g -> %.6g)", len(plan.Adds), len(plan.Evicts), seedCost, res.BestCost)})
	return plan, true
}

// advance executes as much of the open plan as currently fits: adds under
// the bandwidth budget (hottest first, storage-feasible — an add whose
// destination is full waits for a same-server eviction), then evictions
// (which defer while sessions pin the replica). Moves that stall past
// MaxStalls pump cycles are abandoned so the plan always drains.
func (c *Controller) advance() {
	c.mu.Lock()
	plan := c.plan
	c.mu.Unlock()
	if plan == nil {
		return
	}
	var adds []Move
	for i := range plan.Adds {
		m := plan.Adds[i]
		switch c.tryAdd(&m, plan) {
		case moveDone, moveDropped:
		case moveDeferred:
			m.attempts++
			if m.attempts > c.cfg.MaxStalls {
				c.log(serve.RebalanceAction{TimeNS: c.srv.Tracer().NowNS(), Action: "abandon",
					Video: m.Video, Dst: m.Server, Detail: "add stalled"})
			} else {
				adds = append(adds, m)
			}
		}
	}
	pendingAdd := make(map[int]bool, len(adds))
	for _, m := range adds {
		pendingAdd[m.Video] = true
	}
	var evicts []Move
	for i := range plan.Evicts {
		m := plan.Evicts[i]
		switch c.tryEvict(&m, pendingAdd) {
		case moveDone, moveDropped:
		case moveDeferred:
			m.attempts++
			if m.attempts > c.cfg.MaxStalls {
				c.log(serve.RebalanceAction{TimeNS: c.srv.Tracer().NowNS(), Action: "abandon",
					Video: m.Video, Src: m.Server, Detail: "evict stalled (pinned sessions)"})
			} else {
				evicts = append(evicts, m)
			}
		}
	}
	c.mu.Lock()
	plan.Adds, plan.Evicts = adds, evicts
	drained := plan.Pending() == 0 && len(c.inflight) == 0
	if drained {
		c.plan = nil
	}
	c.mu.Unlock()
	if drained {
		c.log(serve.RebalanceAction{TimeNS: c.srv.Tracer().NowNS(), Action: "round-complete",
			Detail: fmt.Sprintf("layout version %d", c.srv.Cluster().LayoutVersion())})
	}
}

// moveOutcome classifies one executor attempt.
type moveOutcome int

const (
	moveDone     moveOutcome = iota // executed (or copy started)
	moveDeferred                    // retry on a later pump
	moveDropped                     // permanently impossible; forget it
)

// tryAdd attempts to start one migration copy.
func (c *Controller) tryAdd(m *Move, plan *Plan) moveOutcome {
	cl := c.srv.Cluster()
	p := cl.Problem()
	v, dst := m.Video, m.Server

	c.mu.Lock()
	if c.inflight[v] {
		c.mu.Unlock()
		return moveDeferred // one copy of a video at a time
	}
	overBudget := c.cfg.Budget > 0 && c.inflightRate+c.cfg.CopyRate > c.cfg.Budget+1e-6
	c.mu.Unlock()
	if overBudget {
		return moveDeferred
	}
	if !cl.Eligible(dst) {
		return moveDeferred // destination draining/down; it may come back
	}
	if holds := cl.Holders(v); len(holds) > 0 {
		for _, h := range holds {
			if h == dst {
				return moveDropped // already there (e.g. the repairer beat us)
			}
		}
	}
	size := p.Catalog[v].SizeBytes()
	if c.storageFree(dst) < size-1e-6 {
		if plan.hasEvictOn(dst) {
			return moveDeferred // an eviction will free the room
		}
		c.log(serve.RebalanceAction{TimeNS: c.srv.Tracer().NowNS(), Action: "drop",
			Video: v, Dst: dst, Detail: "no storage"})
		return moveDropped
	}
	// Source: the most-free holder that is still reachable.
	src, srcFree := -1, int64(0)
	for _, s := range cl.Holders(v) {
		if cl.State(s) == serve.BackendDown {
			continue
		}
		if free := cl.Free(s); src == -1 || free > srcFree {
			src, srcFree = s, free
		}
	}
	if src == -1 {
		return moveDeferred // every replica is down; repair may revive one
	}
	rate := int64(math.Ceil(c.cfg.CopyRate))
	overBackbone := p.BackboneBandwidth > 0
	if overBackbone {
		if !cl.TryReserveBackbone(rate) {
			return moveDeferred
		}
	} else if !cl.TryReserveBandwidth(src, rate) {
		return moveDeferred
	}

	c.mu.Lock()
	c.inflight[v] = true
	c.inflightRate += c.cfg.CopyRate
	if c.inflightRate > c.peakRate {
		c.peakRate = c.inflightRate
	}
	c.mu.Unlock()
	c.log(serve.RebalanceAction{TimeNS: c.srv.Tracer().NowNS(), Action: "copy-start",
		Video: v, Src: src, Dst: dst})

	wall := time.Duration(size * 8 / c.cfg.CopyRate / c.srv.Compress() * float64(time.Second))
	c.copies.Add(1)
	go func() {
		defer c.copies.Done()
		t := time.NewTimer(wall)
		finished := false
		select {
		case <-t.C:
			finished = true
		case <-c.stop:
			t.Stop()
		}
		if overBackbone {
			cl.ReleaseBackbone(rate)
		} else {
			cl.ReleaseBandwidth(src, rate)
		}
		c.mu.Lock()
		delete(c.inflight, v)
		c.inflightRate -= c.cfg.CopyRate
		c.mu.Unlock()
		c.settleCopy(v, src, dst, finished)
		select {
		case c.pump <- struct{}{}:
		default:
		}
	}()
	return moveDone
}

// settleCopy lands or aborts one finished migration transfer, mirroring the
// repairer's settle semantics: a dead endpoint drops the copy.
func (c *Controller) settleCopy(v, src, dst int, finished bool) {
	cl := c.srv.Cluster()
	abort := func(detail string) {
		c.log(serve.RebalanceAction{TimeNS: c.srv.Tracer().NowNS(), Action: "copy-abort",
			Video: v, Src: src, Dst: dst, Detail: detail})
	}
	switch {
	case !finished:
		abort("shutdown")
	case cl.State(src) == serve.BackendDown:
		abort("source died mid-copy")
	case cl.State(dst) == serve.BackendDown:
		abort("destination died mid-copy")
	default:
		if err := c.srv.LandReplica(v, dst); err != nil {
			abort(err.Error())
			return
		}
		c.migrations.Add(1)
		c.log(serve.RebalanceAction{TimeNS: c.srv.Tracer().NowNS(), Action: "copy-complete",
			Video: v, Src: src, Dst: dst})
	}
}

// tryEvict attempts one safe eviction through the serve layer. pendingAdd
// lists videos with adds still pending: their evictions wait, keeping the
// adds-before-evictions ordering per video however the budget staggers the
// copies.
func (c *Controller) tryEvict(m *Move, pendingAdd map[int]bool) moveOutcome {
	c.mu.Lock()
	busy := c.inflight[m.Video]
	c.mu.Unlock()
	if busy || pendingAdd[m.Video] {
		return moveDeferred // let the video's adds land before shrinking it
	}
	err := c.srv.EvictReplica(m.Video, m.Server)
	switch {
	case err == nil:
		c.evictions.Add(1)
		c.log(serve.RebalanceAction{TimeNS: c.srv.Tracer().NowNS(), Action: "evict",
			Video: m.Video, Src: m.Server})
		return moveDone
	case err == serve.ErrReplicaPinned:
		c.deferred.Add(1)
		return moveDeferred
	case err == serve.ErrLastReplica:
		return moveDeferred // a repair copy may restore a sibling
	default:
		c.log(serve.RebalanceAction{TimeNS: c.srv.Tracer().NowNS(), Action: "drop",
			Video: m.Video, Src: m.Server, Detail: err.Error()})
		return moveDropped
	}
}

// storageFree returns backend s's unaccounted content storage against the
// live replica directory — the same arithmetic the repairer uses, so the two
// migration paths agree on room.
func (c *Controller) storageFree(s int) float64 {
	cl := c.srv.Cluster()
	p := cl.Problem()
	used := 0.0
	for v := 0; v < cl.Videos(); v++ {
		for _, h := range cl.Holders(v) {
			if h == s {
				used += p.Catalog[v].SizeBytes()
			}
		}
	}
	return p.StorageOf(s) - used
}

// log appends one journal entry, trimming the oldest half at the cap.
func (c *Controller) log(a serve.RebalanceAction) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.journal) >= maxJournal {
		c.journal = append(c.journal[:0], c.journal[maxJournal/2:]...)
	}
	c.journal = append(c.journal, a)
}

// Journal returns a copy of the journaled actions, oldest first.
func (c *Controller) Journal() []serve.RebalanceAction {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]serve.RebalanceAction(nil), c.journal...)
}

var _ serve.Rebalancer = (*Controller)(nil)
