package rebalance

import (
	"testing"

	"vodcluster/internal/anneal"
	"vodcluster/internal/demand"
)

// TestDiffPlanOrderingAndTruncation pins the plan semantics: adds sorted
// hottest-first and capped, evictions of truncated videos dropped so a
// video's availability never dips mid-plan, evictions coldest-first.
func TestDiffPlanOrderingAndTruncation(t *testing.T) {
	// 3 videos, 3 servers. Empirical heat: video 2 hottest, then 0, then 1.
	counts := []float64{10, 2, 50}
	ranked := []demand.Ranked{{Video: 2, Pop: 0.5}, {Video: 0, Pop: 0.3}, {Video: 1, Pop: 0.2}}
	live := [][]int{
		0: {0, 1}, // target keeps only server 0 -> evict on 1
		1: {1},    // target unchanged
		2: {0},    // target wants {0,1,2} -> adds on 1 and 2
	}
	best := anneal.NewBitRateLayout(3, 3)
	best.RateIdx[0][0], best.RateIdx[0][1], best.RateIdx[0][2] = 0, 0, 0 // rank 0 = video 2
	best.RateIdx[1][0] = 0                                               // rank 1 = video 0
	best.RateIdx[2][1] = 0                                               // rank 2 = video 1

	plan := diffPlan(live, best, ranked, counts, 8)
	if len(plan.Adds) != 2 || len(plan.Evicts) != 1 {
		t.Fatalf("plan = %d adds, %d evicts; want 2, 1", len(plan.Adds), len(plan.Evicts))
	}
	for _, a := range plan.Adds {
		if a.Video != 2 {
			t.Fatalf("add for video %d; only video 2 gains replicas", a.Video)
		}
	}
	if plan.Adds[0].Server != 1 || plan.Adds[1].Server != 2 {
		t.Fatalf("adds out of deterministic order: %+v", plan.Adds)
	}
	if plan.Evicts[0].Video != 0 || plan.Evicts[0].Server != 1 {
		t.Fatalf("evict = %+v; want video 0 off server 1", plan.Evicts[0])
	}

	// Cap 1: only the hottest add survives, and the truncation drops video
	// 2's second add — video 2 has no evictions so nothing else changes.
	capped := diffPlan(live, best, ranked, counts, 1)
	if len(capped.Adds) != 1 || capped.Adds[0].Video != 2 || capped.Adds[0].Server != 1 {
		t.Fatalf("capped adds = %+v", capped.Adds)
	}
	if len(capped.Evicts) != 1 {
		t.Fatalf("capped evicts = %+v", capped.Evicts)
	}

	// Truncating a video WITH planned evictions must drop those evictions.
	live2 := [][]int{
		0: {0},
		1: {1},
		2: {0, 2}, // target {0,1}: one add (server 1) and one evict (server 2)
	}
	best2 := anneal.NewBitRateLayout(3, 3)
	best2.RateIdx[0][0], best2.RateIdx[0][1] = 0, 0 // video 2 -> {0,1}
	best2.RateIdx[1][0] = 0
	best2.RateIdx[2][1] = 0
	full := diffPlan(live2, best2, ranked, counts, 8)
	if len(full.Adds) != 1 || len(full.Evicts) != 1 {
		t.Fatalf("full plan = %+v", full)
	}
	// With the add capped away, the paired eviction must vanish too.
	trunc := diffPlan([][]int{
		0: {0},
		1: {1},
		2: {0, 2},
	}, func() *anneal.BitRateLayout {
		b := anneal.NewBitRateLayout(3, 3)
		b.RateIdx[0][0], b.RateIdx[0][1] = 0, 0
		b.RateIdx[1][0], b.RateIdx[1][1] = 0, 0 // video 0 also gains server 1
		b.RateIdx[2][1] = 0
		return b
	}(), ranked, counts, 1)
	// Cap 1 keeps only video 2's add; video 2's evict must be dropped with
	// its add still pending... but video 2's add IS the one kept, so its
	// evict stays; video 0's add was truncated and it has no evicts.
	if len(trunc.Adds) != 1 || trunc.Adds[0].Video != 2 {
		t.Fatalf("trunc adds = %+v", trunc.Adds)
	}
	for _, e := range trunc.Evicts {
		if e.Video == 0 {
			t.Fatalf("eviction kept for truncated video 0: %+v", trunc.Evicts)
		}
	}
	if !trunc.hasEvictOn(2) {
		t.Fatalf("video 2's eviction should survive: %+v", trunc.Evicts)
	}
}
