package analytic_test

import (
	"fmt"
	"log"

	"vodcluster/internal/analytic"
)

// A paper-sized server: 450 concurrent-stream slots (1.8 Gb/s at 4 Mb/s).
// Offered exactly its capacity in erlangs, an M/G/c/c loss system still
// blocks a few percent of requests — the statistical-multiplexing penalty
// the simulator reproduces.
func ExampleErlangB() {
	b, err := analytic.ErlangB(450, 450)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blocking at 100%% offered load: %.2f%%\n", 100*b)
	// Output: blocking at 100% offered load: 3.67%
}

// Capacity planning: how many stream slots keep blocking below 1% for 450
// erlangs of offered traffic?
func ExampleInverseErlangB() {
	m, err := analytic.InverseErlangB(450, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(m, "slots")
	// Output: 476 slots
}
