package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"vodcluster/internal/core"
	"vodcluster/internal/place"
	"vodcluster/internal/replicate"
	"vodcluster/internal/sim"
	"vodcluster/internal/striped"
)

func TestErlangBKnownValues(t *testing.T) {
	cases := []struct {
		erlangs float64
		servers int
		want    float64
	}{
		// Classic table values.
		{1, 1, 0.5},
		{1, 2, 0.2},
		{2, 2, 0.4},
		{10, 10, 0.21458},
		{100, 120, 0.0056901}, // cross-checked against direct log-sum evaluation
		// Edge cases.
		{0, 0, 1},
		{0, 5, 0},
		{5, 0, 1},
	}
	for _, c := range cases {
		got, err := ErlangB(c.erlangs, c.servers)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 5e-4*(1+c.want) && math.Abs(got-c.want) > 5e-5 {
			t.Fatalf("B(%g, %d) = %.6f, want %.6f", c.erlangs, c.servers, got, c.want)
		}
	}
	if _, err := ErlangB(-1, 2); err == nil {
		t.Fatal("negative load accepted")
	}
	if _, err := ErlangB(1, -2); err == nil {
		t.Fatal("negative slots accepted")
	}
}

// TestErlangBMonotone: blocking rises with load and falls with slots.
func TestErlangBMonotone(t *testing.T) {
	f := func(eRaw, mRaw uint8) bool {
		e := float64(eRaw)/8 + 0.1
		m := int(mRaw%50) + 1
		b1, err1 := ErlangB(e, m)
		b2, err2 := ErlangB(e+1, m)
		b3, err3 := ErlangB(e, m+1)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return b2 >= b1-1e-12 && b3 <= b1+1e-12 && b1 >= 0 && b1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestInverseErlangB(t *testing.T) {
	m, err := InverseErlangB(100, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// The returned count meets the target and is minimal.
	b, _ := ErlangB(100, m)
	if b > 0.01 {
		t.Fatalf("%d slots give blocking %g > 0.01", m, b)
	}
	b, _ = ErlangB(100, m-1)
	if b <= 0.01 {
		t.Fatalf("%d slots already sufficed", m-1)
	}
	if _, err := InverseErlangB(10, 0); err == nil {
		t.Fatal("zero target accepted")
	}
	if m, err := InverseErlangB(0, 0.01); err != nil || m != 0 {
		t.Fatalf("zero load needs zero slots: %d, %v", m, err)
	}
}

func TestErlangsForBlocking(t *testing.T) {
	e, err := ErlangsForBlocking(450, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ErlangB(e, 450)
	if math.Abs(b-0.01) > 1e-4 {
		t.Fatalf("load %g gives blocking %g, want 0.01", e, b)
	}
	// Large systems run close to capacity at 1% blocking (statistical
	// multiplexing): well above 85% utilization for 450 slots.
	if e/450 < 0.85 {
		t.Fatalf("utilization at 1%% blocking = %g, suspiciously low", e/450)
	}
	if _, err := ErlangsForBlocking(0, 0.01); err == nil {
		t.Fatal("zero slots accepted")
	}
	if _, err := ErlangsForBlocking(10, 1.5); err == nil {
		t.Fatal("target above 1 accepted")
	}
}

// validationScenario builds a cluster small enough to simulate to steady
// state quickly: 4 servers × 100 slots.
func validationScenario(t testing.TB, lambdaPerMin float64) (*core.Problem, *core.Layout) {
	t.Helper()
	c, err := core.NewCatalog(40, 0.75, 4*core.Mbps, 90*core.Minute)
	if err != nil {
		t.Fatal(err)
	}
	p := &core.Problem{
		Catalog:            c,
		NumServers:         4,
		StoragePerServer:   14 * c[0].SizeBytes(),
		BandwidthPerServer: 0.4 * core.Gbps, // 100 slots/server
		ArrivalRate:        lambdaPerMin / core.Minute,
		PeakPeriod:         90 * core.Minute,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	budget, err := p.TargetTotalReplicas(1.4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := replicate.BoundedAdams{}.Replicate(p, budget)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := place.SmallestLoadFirst{}.Place(p, r)
	if err != nil {
		t.Fatal(err)
	}
	return p, layout
}

// TestPooledBlockingMatchesStripedSim: Erlang B is exact for the striped
// pool, so a long warmed-up simulation must converge to it.
func TestPooledBlockingMatchesStripedSim(t *testing.T) {
	p, _ := validationScenario(t, 4.6) // 414 erlangs on 400 slots: ~7% blocking
	predicted, err := PooledBlocking(p)
	if err != nil {
		t.Fatal(err)
	}
	if predicted < 0.02 || predicted > 0.25 {
		t.Fatalf("scenario poorly chosen: predicted blocking %g", predicted)
	}
	var measured float64
	runs := 6
	for i := 0; i < runs; i++ {
		res, err := striped.Run(striped.Config{
			Problem:  p,
			Duration: 8 * p.PeakPeriod, // long horizon amortizes the fill transient
			Seed:     int64(100 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		measured += res.RejectionRate
	}
	measured /= float64(runs)
	if ratio := measured / predicted; ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("striped sim %.4f vs Erlang-B %.4f (ratio %.2f)", measured, predicted, ratio)
	}
}

// TestReplicatedBlockingPredictsSim: the per-server Erlang-B approximation
// must land in the right ballpark for the replicated cluster.
func TestReplicatedBlockingPredictsSim(t *testing.T) {
	p, layout := validationScenario(t, 4.6)
	predicted, err := ReplicatedBlocking(p, layout)
	if err != nil {
		t.Fatal(err)
	}
	var measured float64
	runs := 6
	for i := 0; i < runs; i++ {
		res, err := sim.Run(sim.Config{
			Problem: p, Layout: layout,
			Duration: 8 * p.PeakPeriod,
			Warmup:   p.PeakPeriod,
			Seed:     int64(200 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		measured += res.RejectionRate
	}
	measured /= float64(runs)
	if predicted <= 0 {
		t.Fatalf("prediction degenerate: %g", predicted)
	}
	if ratio := measured / predicted; ratio < 0.5 || ratio > 2 {
		t.Fatalf("replicated sim %.4f vs Erlang-B approx %.4f (ratio %.2f)", measured, predicted, ratio)
	}
	// Pooling always beats partitioning: the striped prediction is a lower
	// bound on the replicated one.
	pooled, err := PooledBlocking(p)
	if err != nil {
		t.Fatal(err)
	}
	if predicted < pooled-1e-12 {
		t.Fatalf("partitioned blocking %g below pooled bound %g", predicted, pooled)
	}
}

func TestPerServerBlocking(t *testing.T) {
	p, layout := validationScenario(t, 4.6)
	bs, err := PerServerBlocking(p, layout)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != p.N() {
		t.Fatalf("%d entries for %d servers", len(bs), p.N())
	}
	for s, b := range bs {
		if b < 0 || b > 1 {
			t.Fatalf("server %d blocking %g out of range", s, b)
		}
	}
}

func TestAnalyticValidation(t *testing.T) {
	p, layout := validationScenario(t, 4.6)
	q := p.Clone()
	q.Catalog[0].BitRate = 8 * core.Mbps
	if _, err := PooledBlocking(q); err == nil {
		t.Fatal("mixed rates accepted by pooled blocking")
	}
	if _, err := ReplicatedBlocking(q, layout); err == nil {
		t.Fatal("mixed rates accepted by replicated blocking")
	}
	bad := layout.Clone()
	bad.Replicas[0] = 0
	if _, err := ReplicatedBlocking(p, bad); err == nil {
		t.Fatal("invalid layout accepted")
	}
}

func BenchmarkErlangB3600(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ErlangB(3600, 3600); err != nil {
			b.Fatal(err)
		}
	}
}
