// Package analytic provides closed-form loss-system predictions for the VoD
// cluster — the queueing-theory counterpart of the simulator, used to
// validate it and to sanity-check layouts without simulating.
//
// A VoD server with m concurrent-stream slots, Poisson request arrivals, and
// sessions it never queues is an M/G/c/c loss system, so its steady-state
// blocking probability is the Erlang-B formula — which is insensitive to the
// session-length distribution, making it exact for the simulator's
// fixed-length sessions. Two cluster-level predictions follow:
//
//   - A wide-striped cluster pools all capacity: one Erlang-B evaluation at
//     the aggregate offered load and slot count (exact in steady state).
//   - The replicated cluster under static round-robin splits each video's
//     arrivals across its replicas; treating each server's aggregate
//     arrivals as Poisson gives a per-server Erlang-B approximation whose
//     load-weighted average predicts the cluster rejection rate. (Exact
//     Poisson splitting would require random routing; round-robin thinning
//     makes per-replica arrivals slightly more regular, so the
//     approximation errs high.)
//
// Offered load per replica is exactly its communication weight: the replica
// receives p·λ/r requests/s with mean holding time T, so its offered traffic
// is p·λ·T/r erlangs — the same w_i the paper's algorithms minimize.
package analytic

import (
	"fmt"
	"math"

	"vodcluster/internal/core"
)

// ErlangB returns the steady-state blocking probability of an M/G/c/c loss
// system offered `erlangs` of traffic with `servers` service slots, using
// the numerically stable recurrence
//
//	B(E, 0) = 1,   B(E, m) = E·B(E, m−1) / (m + E·B(E, m−1)).
func ErlangB(erlangs float64, servers int) (float64, error) {
	if erlangs < 0 {
		return 0, fmt.Errorf("analytic: offered load must be non-negative, got %g", erlangs)
	}
	if servers < 0 {
		return 0, fmt.Errorf("analytic: slot count must be non-negative, got %d", servers)
	}
	if erlangs == 0 {
		if servers == 0 {
			return 1, nil
		}
		return 0, nil
	}
	b := 1.0
	for m := 1; m <= servers; m++ {
		b = erlangs * b / (float64(m) + erlangs*b)
	}
	return b, nil
}

// InverseErlangB returns the smallest slot count keeping blocking at or
// below target for the given offered load — the capacity-planning inverse.
func InverseErlangB(erlangs, target float64) (int, error) {
	if target <= 0 || target >= 1 {
		return 0, fmt.Errorf("analytic: target blocking must be in (0,1), got %g", target)
	}
	if erlangs < 0 {
		return 0, fmt.Errorf("analytic: offered load must be non-negative, got %g", erlangs)
	}
	if erlangs == 0 {
		return 0, nil
	}
	b := 1.0
	for m := 1; ; m++ {
		b = erlangs * b / (float64(m) + erlangs*b)
		if b <= target {
			return m, nil
		}
		if m > int(10*erlangs)+1000 {
			return 0, fmt.Errorf("analytic: no slot count below %d reaches blocking %g", m, target)
		}
	}
}

// PooledBlocking predicts the steady-state rejection rate of the
// wide-striped cluster (internal/striped): all arrivals share one pool of
// Σ_s ⌊B_s/b⌋ slots.
func PooledBlocking(p *core.Problem) (float64, error) {
	rate, ok := p.Catalog.FixedBitRate()
	if !ok {
		return 0, fmt.Errorf("analytic: pooled blocking needs a fixed bit rate")
	}
	duration, ok := p.Catalog.FixedDuration()
	if !ok {
		return 0, fmt.Errorf("analytic: pooled blocking needs a fixed duration")
	}
	slots := 0
	for s := 0; s < p.N(); s++ {
		slots += int(p.BandwidthOf(s) / rate)
	}
	return ErlangB(p.ArrivalRate*duration, slots)
}

// ReplicatedBlocking predicts the steady-state rejection rate of the
// replicated cluster under static round-robin: each server is an Erlang-B
// loss system offered its layout load l_s (in erlangs), and the cluster
// rejection is the load-weighted average of the per-server blocking.
func ReplicatedBlocking(p *core.Problem, l *core.Layout) (float64, error) {
	rate, ok := p.Catalog.FixedBitRate()
	if !ok {
		return 0, fmt.Errorf("analytic: replicated blocking needs a fixed bit rate")
	}
	if err := l.Validate(p); err != nil {
		return 0, err
	}
	loads := l.ServerLoads(p) // expected sessions per peak period == erlangs
	total := 0.0
	blocked := 0.0
	for s, e := range loads {
		slots := int(p.BandwidthOf(s) / rate)
		b, err := ErlangB(e, slots)
		if err != nil {
			return 0, err
		}
		total += e
		blocked += e * b
	}
	if total == 0 {
		return 0, nil
	}
	return blocked / total, nil
}

// PerServerBlocking returns each server's Erlang-B blocking under the
// layout, for diagnosing which servers a placement overloads.
func PerServerBlocking(p *core.Problem, l *core.Layout) ([]float64, error) {
	rate, ok := p.Catalog.FixedBitRate()
	if !ok {
		return nil, fmt.Errorf("analytic: blocking needs a fixed bit rate")
	}
	loads := l.ServerLoads(p)
	out := make([]float64, len(loads))
	for s, e := range loads {
		b, err := ErlangB(e, int(p.BandwidthOf(s)/rate))
		if err != nil {
			return nil, err
		}
		out[s] = b
	}
	return out, nil
}

// ErlangsForBlocking returns the offered load at which an m-slot system
// reaches the target blocking, by bisection — the utilization headroom
// question ("how far can λ rise before 1% rejection?").
func ErlangsForBlocking(servers int, target float64) (float64, error) {
	if servers <= 0 {
		return 0, fmt.Errorf("analytic: need at least one slot")
	}
	if target <= 0 || target >= 1 {
		return 0, fmt.Errorf("analytic: target blocking must be in (0,1), got %g", target)
	}
	lo, hi := 0.0, float64(servers)
	for {
		b, err := ErlangB(hi, servers)
		if err != nil {
			return 0, err
		}
		if b >= target {
			break
		}
		hi *= 2
		if math.IsInf(hi, 1) {
			return 0, fmt.Errorf("analytic: target blocking %g unreachable", target)
		}
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		b, err := ErlangB(mid, servers)
		if err != nil {
			return 0, err
		}
		if b < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}
