package replicate

import (
	"fmt"

	"vodcluster/internal/apportion"
	"vodcluster/internal/core"
)

// BoundedAdams is the paper's optimal replication algorithm (§4.1.1): start
// with one replica per video, then repeatedly duplicate the video whose
// replicas currently carry the greatest communication weight, skipping videos
// that already have N replicas, until the replica budget is exhausted.
//
// This is Adams' monotone divisor apportionment bounded by the server count;
// Theorem 4.1 states it minimizes the maximum per-replica communication
// weight (Eq. 8) among all vectors with Σ r_i equal to the budget and
// r_i ≤ N. The heap-based implementation runs in O((M + K) log M) for K
// duplications, matching the paper's O(M·N·C·log M) worst case when the
// budget saturates cluster storage.
type BoundedAdams struct{}

// Name implements Replicator.
func (BoundedAdams) Name() string { return "adams" }

// Replicate implements Replicator.
func (BoundedAdams) Replicate(p *core.Problem, totalReplicas int) ([]int, error) {
	if err := checkBudget(p, totalReplicas); err != nil {
		return nil, err
	}
	caps := make([]int, p.M())
	for i := range caps {
		caps[i] = p.N()
	}
	r, err := apportion.BoundedDivisor(p.Catalog.Popularities(), totalReplicas, apportion.Adams, caps)
	if err != nil {
		return nil, fmt.Errorf("replicate: adams: %w", err)
	}
	if err := validateVector(p, r, totalReplicas); err != nil {
		return nil, err
	}
	return r, nil
}

// BruteForceOptimal exhaustively searches all feasible replica vectors with
// Σ r_i == totalReplicas and returns one minimizing the maximum per-replica
// weight. It exists to verify Theorem 4.1 in tests and is exponential in M;
// callers must keep M and N tiny.
func BruteForceOptimal(p *core.Problem, totalReplicas int) ([]int, float64, error) {
	if err := checkBudget(p, totalReplicas); err != nil {
		return nil, 0, err
	}
	m, n := p.M(), p.N()
	best := []int(nil)
	bestVal := 0.0
	cur := make([]int, m)
	var rec func(i, left int)
	rec = func(i, left int) {
		if i == m {
			if left != 0 {
				return
			}
			v := MaxWeight(p, cur)
			if best == nil || v < bestVal {
				best = append([]int(nil), cur...)
				bestVal = v
			}
			return
		}
		remaining := m - i - 1 // later videos need ≥1 each
		for r := 1; r <= n && left-r >= remaining; r++ {
			cur[i] = r
			rec(i+1, left-r)
		}
	}
	rec(0, totalReplicas)
	if best == nil {
		return nil, 0, fmt.Errorf("replicate: no feasible vector for budget %d", totalReplicas)
	}
	return best, bestVal, nil
}
