package replicate_test

import (
	"fmt"
	"log"

	"vodcluster/internal/core"
	"vodcluster/internal/replicate"
)

// The paper's Figure 1 scenario: five videos on three servers whose storage
// holds nine replicas in total. The bounded Adams divisor scheme hands each
// extra replica to the video whose replicas currently carry the greatest
// communication weight, never exceeding one replica per server.
func ExampleBoundedAdams() {
	catalog := core.Catalog{
		{ID: 0, Popularity: 0.36, BitRate: 4 * core.Mbps, Duration: 90 * core.Minute},
		{ID: 1, Popularity: 0.22, BitRate: 4 * core.Mbps, Duration: 90 * core.Minute},
		{ID: 2, Popularity: 0.17, BitRate: 4 * core.Mbps, Duration: 90 * core.Minute},
		{ID: 3, Popularity: 0.14, BitRate: 4 * core.Mbps, Duration: 90 * core.Minute},
		{ID: 4, Popularity: 0.11, BitRate: 4 * core.Mbps, Duration: 90 * core.Minute},
	}
	problem := &core.Problem{
		Catalog:            catalog,
		NumServers:         3,
		StoragePerServer:   3 * catalog[0].SizeBytes(),
		BandwidthPerServer: core.Gbps,
		ArrivalRate:        10.0 / core.Minute,
		PeakPeriod:         90 * core.Minute,
	}
	replicas, err := replicate.BoundedAdams{}.Replicate(problem, 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(replicas)
	// Output: [3 2 2 1 1]
}

// The Zipf-interval scheme approximates the optimal replication in
// O(M log M) by classifying popularities into N Zipf-skewed intervals.
func ExampleZipfInterval() {
	catalog, err := core.NewCatalog(7, 0.6, 4*core.Mbps, 90*core.Minute)
	if err != nil {
		log.Fatal(err)
	}
	problem := &core.Problem{
		Catalog:            catalog,
		NumServers:         4,
		StoragePerServer:   4 * catalog[0].SizeBytes(),
		BandwidthPerServer: core.Gbps,
		ArrivalRate:        10.0 / core.Minute,
		PeakPeriod:         90 * core.Minute,
	}
	replicas, err := replicate.ZipfInterval{}.Replicate(problem, 13)
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, r := range replicas {
		total += r
	}
	fmt.Println(replicas, "total:", total)
	// Output: [3 2 2 2 2 1 1] total: 13
}
