package replicate

import (
	"vodcluster/internal/apportion"
	"vodcluster/internal/core"
)

// Classification is the "feasible and straightforward" baseline the paper's
// evaluation compares against (§5, citing the authors' companion work): it
// groups videos into popularity classes and assigns replicas per class
// rather than per video.
//
// The exact class construction is not spelled out in the paper, so this
// implementation uses the most natural reading: videos are split by rank into
// N equal-size classes, the replica budget is apportioned across classes in
// proportion to each class's aggregate popularity (largest-remainder rule),
// and every video within a class receives the same count — the class's share
// divided equally, clamped to [1, N]. The within-class uniformity is the
// point: the baseline is deliberately coarse-grained, which leaves the
// per-replica communication weights unequal and wastes part of the budget,
// reproducing the qualitative gap the paper's Figures 4–6 show.
type Classification struct{}

// Name implements Replicator.
func (Classification) Name() string { return "classification" }

// Replicate implements Replicator.
func (Classification) Replicate(p *core.Problem, totalReplicas int) ([]int, error) {
	if err := checkBudget(p, totalReplicas); err != nil {
		return nil, err
	}
	m, n := p.M(), p.N()
	numClasses := n
	if numClasses > m {
		numClasses = m
	}
	// Class k covers ranks [start_k, start_k+size_k); the first classes get
	// the extra videos when M is not a multiple of the class count.
	sizes := make([]int, numClasses)
	for k := range sizes {
		sizes[k] = m / numClasses
		if k < m%numClasses {
			sizes[k]++
		}
	}
	classPop := make([]float64, numClasses)
	idx := 0
	starts := make([]int, numClasses)
	for k, size := range sizes {
		starts[k] = idx
		for j := 0; j < size; j++ {
			classPop[k] += p.Catalog[idx].Popularity
			idx++
		}
	}
	seats, err := apportion.Apportion(classPop, totalReplicas, apportion.Hamilton)
	if err != nil {
		return nil, err
	}
	r := make([]int, m)
	for k, size := range sizes {
		per := seats[k] / size
		if per < 1 {
			per = 1
		}
		if per > n {
			per = n
		}
		for j := 0; j < size; j++ {
			r[starts[k]+j] = per
		}
	}
	// Equal division can overshoot the budget when small classes round up to
	// one replica each; trim from the least popular videos down to budget.
	total := 0
	for _, ri := range r {
		total += ri
	}
	for i := m - 1; i >= 0 && total > totalReplicas; i-- {
		for r[i] > 1 && total > totalReplicas {
			r[i]--
			total--
		}
	}
	if err := validateVector(p, r, totalReplicas); err != nil {
		return nil, err
	}
	return r, nil
}

var _ Replicator = Classification{}
