package replicate

import (
	"testing"

	"vodcluster/internal/core"
)

func TestClassificationWithinClassUniform(t *testing.T) {
	// Every video inside one rank class must receive the same replica
	// count — the coarseness that defines the baseline.
	p := makeProblem(t, 40, 8, 0.75, 10)
	r, err := Classification{}.Replicate(p, 56)
	if err != nil {
		t.Fatal(err)
	}
	classSize := 40 / 8
	for c := 0; c < 8; c++ {
		first := r[c*classSize]
		for j := 1; j < classSize; j++ {
			v := c*classSize + j
			// The trim step may lower trailing videos of the last classes;
			// allow a difference only on the tail.
			if r[v] != first && c < 6 {
				t.Fatalf("class %d not uniform: r[%d]=%d vs %d", c, v, r[v], first)
			}
		}
	}
}

func TestClassificationCoarserThanAdams(t *testing.T) {
	// The baseline's Eq. 8 objective should never beat the optimal Adams
	// value (and typically trails it).
	p := makeProblem(t, 100, 8, 0.9, 15)
	budget := 120
	a, err := BoundedAdams{}.Replicate(p, budget)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Classification{}.Replicate(p, budget)
	if err != nil {
		t.Fatal(err)
	}
	if MaxWeight(p, c) < MaxWeight(p, a)-1e-9 {
		t.Fatalf("baseline beat the provably optimal scheme: %g < %g",
			MaxWeight(p, c), MaxWeight(p, a))
	}
}

func TestClassificationFewVideos(t *testing.T) {
	// M < N: class count clamps to M, still valid.
	pops := []float64{0.5, 0.3, 0.2}
	p := customProblem(t, pops, 8, 3)
	r, err := Classification{}.Replicate(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if totalOf(r) > 10 {
		t.Fatalf("budget exceeded: %v", r)
	}
	for _, ri := range r {
		if ri < 1 || ri > 8 {
			t.Fatalf("bounds violated: %v", r)
		}
	}
}

func TestClassificationTrimsToBudget(t *testing.T) {
	// A minimal budget (1 replica each) must not overshoot even though each
	// class rounds its share up to at least one per video.
	p := makeProblem(t, 17, 5, 0.271, 5) // M not a multiple of class count
	r, err := Classification{}.Replicate(p, 17)
	if err != nil {
		t.Fatal(err)
	}
	if totalOf(r) != 17 {
		t.Fatalf("minimal budget mishandled: total %d, want 17", totalOf(r))
	}
}

func TestUniformSpreadsEvenly(t *testing.T) {
	p := makeProblem(t, 10, 4, 0.75, 4)
	r, err := Uniform{}.Replicate(p, 25)
	if err != nil {
		t.Fatal(err)
	}
	// 25 = 2×10 + 5: first five videos get 3, rest 2.
	for i, ri := range r {
		want := 2
		if i < 5 {
			want = 3
		}
		if ri != want {
			t.Fatalf("uniform: r[%d]=%d, want %d", i, ri, want)
		}
	}
}

func TestUniformFullBudget(t *testing.T) {
	p := makeProblem(t, 6, 3, 0.75, 6)
	r, err := Uniform{}.Replicate(p, 18) // N·M exactly
	if err != nil {
		t.Fatal(err)
	}
	for i, ri := range r {
		if ri != 3 {
			t.Fatalf("full budget: r[%d]=%d, want 3", i, ri)
		}
	}
}

func TestUniformIsOptimalForUniformPopularity(t *testing.T) {
	// The paper: round-robin replication is optimal when popularity is
	// uniform. Uniform popularity ⇒ Uniform's max weight equals Adams'.
	c, err := core.NewCatalog(12, 0, 4*core.Mbps, 90*core.Minute) // θ=0: uniform
	if err != nil {
		t.Fatal(err)
	}
	p := &core.Problem{
		Catalog:            c,
		NumServers:         4,
		StoragePerServer:   6 * c[0].SizeBytes(),
		BandwidthPerServer: core.Gbps,
		ArrivalRate:        10.0 / core.Minute,
		PeakPeriod:         90 * core.Minute,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	budget := 18
	u, err := Uniform{}.Replicate(p, budget)
	if err != nil {
		t.Fatal(err)
	}
	a, err := BoundedAdams{}.Replicate(p, budget)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := MaxWeight(p, u), MaxWeight(p, a); got > want+1e-9 {
		t.Fatalf("uniform replication suboptimal under uniform popularity: %g vs %g", got, want)
	}
}
