// Package replicate implements the paper's video replication algorithms:
// deciding how many replicas r_i each video receives so that the maximum
// per-replica communication weight max_i p_i·λ·T/r_i is minimized (paper
// Eq. 8) under a total replica budget, with 1 ≤ r_i ≤ N (Eq. 7).
//
// Three algorithms from the paper are provided, plus a uniform baseline:
//
//   - BoundedAdams — the optimal bounded Adams monotone divisor replication
//     (§4.1.1, Theorem 4.1);
//   - ZipfInterval — the O(M log M) approximation that classifies
//     popularities into N Zipf-skewed intervals (§4.1.2);
//   - Classification — the straightforward rank-class baseline the
//     evaluation compares against (§5, citing the authors' earlier work);
//   - Uniform — round-robin replication, optimal only for uniform
//     popularities.
package replicate

import (
	"fmt"

	"vodcluster/internal/core"
)

// Replicator computes a replica-count vector for a problem under a total
// replica budget.
type Replicator interface {
	// Replicate returns r with len(r) == p.M(), Σ r_i ≤ totalReplicas,
	// and 1 ≤ r_i ≤ p.N() for every i. Implementations aim to use the
	// whole budget; ZipfInterval may fall slightly short by design.
	Replicate(p *core.Problem, totalReplicas int) ([]int, error)
	// Name identifies the algorithm in reports.
	Name() string
}

// checkBudget validates the common preconditions of every replicator.
func checkBudget(p *core.Problem, totalReplicas int) error {
	m, n := p.M(), p.N()
	if m == 0 {
		return fmt.Errorf("replicate: empty catalog")
	}
	if totalReplicas < m {
		return fmt.Errorf("replicate: budget %d below one replica per video (M=%d)", totalReplicas, m)
	}
	if totalReplicas > m*n {
		return fmt.Errorf("replicate: budget %d exceeds M·N = %d (Eq. 7 caps replicas at N per video)", totalReplicas, m*n)
	}
	return nil
}

// MaxWeight returns the replication objective value (Eq. 8) of a replica
// vector: the largest per-replica communication weight. Lower is better.
func MaxWeight(p *core.Problem, replicas []int) float64 {
	peak := p.PeakRequests()
	max := 0.0
	for i, r := range replicas {
		if r <= 0 {
			continue
		}
		if w := p.Catalog[i].Popularity * peak / float64(r); w > max {
			max = w
		}
	}
	return max
}

// validateVector checks the invariants promised by Replicate.
func validateVector(p *core.Problem, replicas []int, budget int) error {
	if len(replicas) != p.M() {
		return fmt.Errorf("replicate: vector has %d entries for %d videos", len(replicas), p.M())
	}
	total := 0
	for i, r := range replicas {
		if r < 1 || r > p.N() {
			return fmt.Errorf("replicate: video %d gets %d replicas; want 1..%d", i, r, p.N())
		}
		total += r
	}
	if total > budget {
		return fmt.Errorf("replicate: produced %d replicas over budget %d", total, budget)
	}
	return nil
}
