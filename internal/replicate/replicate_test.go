package replicate

import (
	"math"
	"testing"

	"vodcluster/internal/core"
	"vodcluster/internal/stats"
)

// makeProblem builds a fixed-rate problem with m videos, n servers, skew
// theta, and storage for capPerServer replicas on each server.
func makeProblem(t testing.TB, m, n int, theta float64, capPerServer int) *core.Problem {
	t.Helper()
	c, err := core.NewCatalog(m, theta, 4*core.Mbps, 90*core.Minute)
	if err != nil {
		t.Fatal(err)
	}
	p := &core.Problem{
		Catalog:            c,
		NumServers:         n,
		StoragePerServer:   float64(capPerServer) * c[0].SizeBytes(),
		BandwidthPerServer: 1.8 * core.Gbps,
		ArrivalRate:        40.0 / core.Minute,
		PeakPeriod:         90 * core.Minute,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

// customProblem builds a problem from an explicit popularity vector.
func customProblem(t testing.TB, pops []float64, n, capPerServer int) *core.Problem {
	t.Helper()
	c := make(core.Catalog, len(pops))
	for i, pop := range pops {
		c[i] = core.Video{ID: i, Popularity: pop, BitRate: 4 * core.Mbps, Duration: 90 * core.Minute}
	}
	p := &core.Problem{
		Catalog:            c,
		NumServers:         n,
		StoragePerServer:   float64(capPerServer) * c[0].SizeBytes(),
		BandwidthPerServer: core.Gbps,
		ArrivalRate:        10.0 / core.Minute,
		PeakPeriod:         90 * core.Minute,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func totalOf(r []int) int {
	s := 0
	for _, x := range r {
		s += x
	}
	return s
}

func TestBudgetValidation(t *testing.T) {
	p := makeProblem(t, 10, 4, 0.75, 5)
	for _, r := range []Replicator{BoundedAdams{}, ZipfInterval{}, Classification{}, Uniform{}} {
		if _, err := r.Replicate(p, 9); err == nil {
			t.Fatalf("%s: budget below M accepted", r.Name())
		}
		if _, err := r.Replicate(p, 41); err == nil {
			t.Fatalf("%s: budget above M·N accepted", r.Name())
		}
	}
}

func TestAllReplicatorsRespectInvariants(t *testing.T) {
	for _, theta := range []float64{0.271, 0.75, 1.0} {
		p := makeProblem(t, 50, 8, theta, 10) // capacity 80
		for _, budget := range []int{50, 60, 75, 80} {
			for _, r := range []Replicator{BoundedAdams{}, ZipfInterval{}, Classification{}, Uniform{}} {
				got, err := r.Replicate(p, budget)
				if err != nil {
					t.Fatalf("%s θ=%g budget=%d: %v", r.Name(), theta, budget, err)
				}
				if len(got) != p.M() {
					t.Fatalf("%s: wrong length", r.Name())
				}
				for i, ri := range got {
					if ri < 1 || ri > p.N() {
						t.Fatalf("%s: r[%d]=%d violates Eq. 7", r.Name(), i, ri)
					}
				}
				if tot := totalOf(got); tot > budget {
					t.Fatalf("%s: produced %d replicas over budget %d", r.Name(), tot, budget)
				}
			}
		}
	}
}

func TestReplicatorsDeterministic(t *testing.T) {
	p := makeProblem(t, 40, 6, 0.75, 8)
	for _, r := range []Replicator{BoundedAdams{}, ZipfInterval{}, Classification{}, Uniform{}} {
		a, err := r.Replicate(p, 55)
		if err != nil {
			t.Fatal(err)
		}
		b, err := r.Replicate(p, 55)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s not deterministic at video %d", r.Name(), i)
			}
		}
	}
}

func TestReplicasFollowPopularityOrder(t *testing.T) {
	// Every popularity-aware scheme must give the hotter video at least as
	// many replicas as any colder one.
	p := makeProblem(t, 30, 6, 0.9, 8)
	for _, r := range []Replicator{BoundedAdams{}, ZipfInterval{}} {
		got, err := r.Replicate(p, 44)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(got); i++ {
			if got[i] > got[i-1] {
				t.Fatalf("%s: colder video %d has more replicas (%d) than %d (%d)",
					r.Name(), i, got[i], i-1, got[i-1])
			}
		}
	}
}

func TestAdamsUsesFullBudget(t *testing.T) {
	p := makeProblem(t, 20, 5, 0.75, 8)
	for _, budget := range []int{20, 27, 33, 40} {
		got, err := BoundedAdams{}.Replicate(p, budget)
		if err != nil {
			t.Fatal(err)
		}
		if totalOf(got) != budget {
			t.Fatalf("Adams left budget unused: %d of %d", totalOf(got), budget)
		}
	}
}

func TestAdamsOptimalAgainstBruteForce(t *testing.T) {
	rng := stats.NewRNG(99)
	for trial := 0; trial < 30; trial++ {
		m := 3 + rng.Intn(3) // 3..5 videos
		n := 2 + rng.Intn(3) // 2..4 servers
		pops := make([]float64, m)
		sum := 0.0
		for i := range pops {
			pops[i] = rng.Float64() + 0.05
			sum += pops[i]
		}
		for i := range pops {
			pops[i] /= sum
		}
		// Sort descending for a valid catalog.
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				if pops[j] > pops[i] {
					pops[i], pops[j] = pops[j], pops[i]
				}
			}
		}
		p := customProblem(t, pops, n, m) // capacity n*m ≥ any budget
		maxBudget := m * n
		budget := m + rng.Intn(maxBudget-m+1)
		got, err := BoundedAdams{}.Replicate(p, budget)
		if err != nil {
			t.Fatal(err)
		}
		_, bestVal, err := BruteForceOptimal(p, budget)
		if err != nil {
			t.Fatal(err)
		}
		if gotVal := MaxWeight(p, got); gotVal > bestVal+1e-9 {
			t.Fatalf("trial %d (m=%d n=%d budget=%d): Adams max weight %g > optimal %g (r=%v)",
				trial, m, n, budget, gotVal, bestVal, got)
		}
	}
}

func TestAdamsPaperExample(t *testing.T) {
	// Figure 1: five videos on three servers (capacity 9 replicas),
	// p1 ≥ p2 ≥ ... ≥ p5. With budget 9, the Adams scheme repeatedly
	// duplicates the currently heaviest video. For the catalog below
	// (θ=0.75-like shape) the paper's trace ends with r = (3, 2, 2, 1, 1).
	pops := []float64{0.36, 0.22, 0.17, 0.14, 0.11}
	p := customProblem(t, pops, 3, 3)
	r, err := BoundedAdams{}.Replicate(p, 9)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 2, 2, 1, 1}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("paper example: r = %v, want %v", r, want)
		}
	}
	// And the replica bound holds: no video exceeds the server count.
	r, err = BoundedAdams{}.Replicate(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r[0] > 3 {
		t.Fatalf("Eq. 7 violated: %v", r)
	}
}

func TestAdamsBoundBindsForHotVideo(t *testing.T) {
	// One overwhelmingly popular video: without the Eq. 7 cap it would take
	// nearly all replicas; with it, it gets exactly N.
	pops := []float64{0.9, 0.04, 0.03, 0.02, 0.01}
	p := customProblem(t, pops, 3, 5)
	r, err := BoundedAdams{}.Replicate(p, 12)
	if err != nil {
		t.Fatal(err)
	}
	if r[0] != 3 {
		t.Fatalf("hot video got %d replicas, want the cap N=3", r[0])
	}
	if totalOf(r) != 12 {
		t.Fatalf("budget unused: %v", r)
	}
}

func TestMaxWeight(t *testing.T) {
	p := customProblem(t, []float64{0.5, 0.3, 0.2}, 2, 3)
	peak := p.PeakRequests()
	r := []int{2, 1, 1}
	want := 0.3 * peak // v1 has the heaviest replicas: 0.3·peak/1
	if got := MaxWeight(p, r); math.Abs(got-want) > 1e-9 {
		t.Fatalf("MaxWeight = %g, want %g", got, want)
	}
	if got := MaxWeight(p, []int{0, 0, 0}); got != 0 {
		t.Fatalf("MaxWeight of zero vector = %g", got)
	}
}

func TestBruteForceValidation(t *testing.T) {
	p := customProblem(t, []float64{0.6, 0.4}, 2, 2)
	if _, _, err := BruteForceOptimal(p, 1); err == nil {
		t.Fatal("budget below M accepted")
	}
	r, v, err := BruteForceOptimal(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if totalOf(r) != 3 || v <= 0 {
		t.Fatalf("r=%v v=%g", r, v)
	}
}

// TestAdamsHouseMonotone: growing the replica budget never takes a replica
// away from any video — the property that makes the scheme usable for
// incremental (runtime) replication as storage frees up.
func TestAdamsHouseMonotone(t *testing.T) {
	p := makeProblem(t, 30, 6, 0.8, 6) // capacity 36
	prev, err := BoundedAdams{}.Replicate(p, 30)
	if err != nil {
		t.Fatal(err)
	}
	for budget := 31; budget <= 36; budget++ {
		next, err := BoundedAdams{}.Replicate(p, budget)
		if err != nil {
			t.Fatal(err)
		}
		for v := range next {
			if next[v] < prev[v] {
				t.Fatalf("budget %d removed a replica of video %d (%d → %d)",
					budget, v, prev[v], next[v])
			}
		}
		prev = next
	}
}

// TestMaxWeightNonIncreasingInBudget: the Eq. 8 objective can only improve
// as the budget grows, for every replicator.
func TestMaxWeightNonIncreasingInBudget(t *testing.T) {
	p := makeProblem(t, 25, 5, 0.75, 5) // capacity 25... bump below
	p.StoragePerServer *= 2             // capacity 50
	for _, r := range []Replicator{BoundedAdams{}, ZipfInterval{}} {
		prev := -1.0
		for budget := 25; budget <= 50; budget += 5 {
			vec, err := r.Replicate(p, budget)
			if err != nil {
				t.Fatal(err)
			}
			w := MaxWeight(p, vec)
			if prev >= 0 && w > prev+1e-9 {
				t.Fatalf("%s: max weight rose from %g to %g at budget %d", r.Name(), prev, w, budget)
			}
			prev = w
		}
	}
}
