package replicate

import (
	"testing"
	"testing/quick"

	"vodcluster/internal/stats"
)

// TestZipfIntervalMonotoneLemma verifies Lemma 4.1: the total number of
// replicas produced by AssignForParam is non-decreasing in the interval
// parameter u.
func TestZipfIntervalMonotoneLemma(t *testing.T) {
	p := makeProblem(t, 60, 8, 0.75, 10)
	zr := ZipfInterval{}
	prev := -1
	for u := -6.0; u <= 6.0; u += 0.125 {
		total := totalOf(zr.AssignForParam(p, u))
		if prev >= 0 && total < prev {
			t.Fatalf("Lemma 4.1 violated: total dropped from %d to %d at u=%g", prev, total, u)
		}
		prev = total
	}
}

// TestZipfIntervalMonotoneQuick re-checks the lemma on random instances.
func TestZipfIntervalMonotoneQuick(t *testing.T) {
	zr := ZipfInterval{}
	f := func(seed int64, u1Raw, u2Raw int8) bool {
		rng := stats.NewRNG(seed)
		m := 5 + rng.Intn(40)
		n := 2 + rng.Intn(10)
		p := makeProblem(t, m, n, 0.3+rng.Float64()*0.7, n)
		u1 := float64(u1Raw) / 12
		u2 := float64(u2Raw) / 12
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		return totalOf(zr.AssignForParam(p, u1)) <= totalOf(zr.AssignForParam(p, u2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfIntervalExtremes(t *testing.T) {
	p := makeProblem(t, 20, 4, 0.75, 4)
	zr := ZipfInterval{}
	// Very negative u: everyone lands in the last interval → 1 replica each.
	low := zr.AssignForParam(p, -50)
	for i, r := range low {
		if r != 1 {
			t.Fatalf("u=-50: r[%d]=%d, want 1", i, r)
		}
	}
	// Very positive u: everyone in the first interval → N replicas each.
	high := zr.AssignForParam(p, 50)
	for i, r := range high {
		if r != p.N() {
			t.Fatalf("u=50: r[%d]=%d, want N=%d", i, r, p.N())
		}
	}
}

func TestZipfIntervalSaturatesBudget(t *testing.T) {
	// The interval scheme is coarse, but it should land reasonably close to
	// the budget from below: within one interval-step of videos.
	p := makeProblem(t, 100, 8, 0.75, 15) // capacity 120
	zr := ZipfInterval{}
	for _, budget := range []int{100, 110, 120} {
		got, err := zr.Replicate(p, budget)
		if err != nil {
			t.Fatal(err)
		}
		total := totalOf(got)
		if total > budget {
			t.Fatalf("budget exceeded: %d > %d", total, budget)
		}
		if total < budget-p.M()/2 {
			t.Fatalf("budget badly undershot: %d of %d", total, budget)
		}
	}
}

func TestZipfIntervalSingleServer(t *testing.T) {
	p := makeProblem(t, 10, 1, 0.75, 10)
	got, err := ZipfInterval{}.Replicate(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r != 1 {
			t.Fatalf("N=1 must give exactly one replica each: %v", got)
		}
	}
}

func TestZipfIntervalParamAccessor(t *testing.T) {
	p := makeProblem(t, 50, 8, 0.75, 10)
	zr := ZipfInterval{}
	u, err := zr.Param(p, 70)
	if err != nil {
		t.Fatal(err)
	}
	got := totalOf(zr.AssignForParam(p, u))
	if got > 70 {
		t.Fatalf("Param's assignment exceeds the budget: %d", got)
	}
	if _, err := zr.Param(p, 10); err == nil {
		t.Fatal("budget below M accepted")
	}
}

func TestZipfIntervalMatchesAdamsQuality(t *testing.T) {
	// §5 finds the Zipf replication "nearly the same" as Adams. Require its
	// Eq. 8 objective within 2× of optimal on the paper's configuration —
	// a loose but meaningful sanity bound for an O(M log M) approximation.
	p := makeProblem(t, 100, 8, 0.75, 15)
	budget := 120
	adams, err := BoundedAdams{}.Replicate(p, budget)
	if err != nil {
		t.Fatal(err)
	}
	z, err := ZipfInterval{}.Replicate(p, budget)
	if err != nil {
		t.Fatal(err)
	}
	a, zv := MaxWeight(p, adams), MaxWeight(p, z)
	if zv > 2*a {
		t.Fatalf("Zipf-interval max weight %g vs Adams %g", zv, a)
	}
}

func BenchmarkZipfReplication100x8(b *testing.B) {
	p := makeProblem(b, 100, 8, 0.75, 15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (ZipfInterval{}).Replicate(p, 120); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdamsReplication100x8(b *testing.B) {
	p := makeProblem(b, 100, 8, 0.75, 15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (BoundedAdams{}).Replicate(p, 120); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkZipfReplication2000x32(b *testing.B) {
	p := makeProblem(b, 2000, 32, 0.75, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (ZipfInterval{}).Replicate(p, 3000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdamsReplication2000x32(b *testing.B) {
	p := makeProblem(b, 2000, 32, 0.75, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (BoundedAdams{}).Replicate(p, 3000); err != nil {
			b.Fatal(err)
		}
	}
}
