package replicate

import (
	"vodcluster/internal/core"
)

// Uniform ignores popularity and spreads the replica budget evenly: every
// video gets ⌊budget/M⌋ replicas and the most popular budget mod M videos get
// one more. The paper notes a round-robin scheme like this is optimal when
// the popularity distribution is uniform — and only then; it serves as the
// popularity-blind control in ablations.
type Uniform struct{}

// Name implements Replicator.
func (Uniform) Name() string { return "uniform" }

// Replicate implements Replicator.
func (Uniform) Replicate(p *core.Problem, totalReplicas int) ([]int, error) {
	if err := checkBudget(p, totalReplicas); err != nil {
		return nil, err
	}
	m := p.M()
	base := totalReplicas / m
	extra := totalReplicas % m
	r := make([]int, m)
	for i := range r {
		r[i] = base
		if i < extra {
			r[i]++
		}
	}
	// base ≤ N is guaranteed by checkBudget (budget ≤ M·N), but base+1 can
	// exceed N when budget == M·N exactly plus rounding; clamp and push the
	// surplus down the rank order.
	surplus := 0
	for i := range r {
		if r[i] > p.N() {
			surplus += r[i] - p.N()
			r[i] = p.N()
		}
	}
	for i := 0; i < m && surplus > 0; i++ {
		if r[i] < p.N() {
			add := p.N() - r[i]
			if add > surplus {
				add = surplus
			}
			r[i] += add
			surplus -= add
		}
	}
	if err := validateVector(p, r, totalReplicas); err != nil {
		return nil, err
	}
	return r, nil
}

var _ Replicator = Uniform{}
var _ Replicator = BoundedAdams{}
