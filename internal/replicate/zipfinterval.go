package replicate

import (
	"math"

	"vodcluster/internal/core"
	"vodcluster/internal/zipf"
)

// ZipfInterval is the paper's time-efficient approximation to the optimal
// replication (§4.1.2). It partitions the popularity range [0, p_1 + p_M]
// into N intervals whose widths follow a Zipf-like law with parameter u
// (interval 1, the widest for u > 0, covering the highest popularities), and
// assigns every video in interval j the same replica count N − j + 1. The
// parameter u is found by binary search — the total number of replicas is
// non-decreasing in u (Lemma 4.1) — so the scheme saturates the replica
// budget as closely as the coarse interval granularity allows without ever
// exceeding it. Complexity O(M log M).
type ZipfInterval struct{}

// Name implements Replicator.
func (ZipfInterval) Name() string { return "zipf" }

// Replicate implements Replicator.
func (ZipfInterval) Replicate(p *core.Problem, totalReplicas int) ([]int, error) {
	if err := checkBudget(p, totalReplicas); err != nil {
		return nil, err
	}
	r := assignForParam(p, searchParam(p, totalReplicas))
	if err := validateVector(p, r, totalReplicas); err != nil {
		return nil, err
	}
	return r, nil
}

// Param exposes the binary-searched skew parameter u for a given budget, for
// inspection and tests of Lemma 4.1.
func (ZipfInterval) Param(p *core.Problem, totalReplicas int) (float64, error) {
	if err := checkBudget(p, totalReplicas); err != nil {
		return 0, err
	}
	return searchParam(p, totalReplicas), nil
}

// AssignForParam returns the replica vector produced by interval parameter u
// directly, without budget search. Exported for tests of the monotonicity
// lemma.
func (ZipfInterval) AssignForParam(p *core.Problem, u float64) []int {
	return assignForParam(p, u)
}

// assignForParam classifies each video's popularity into one of N
// Zipf(u)-skewed intervals of [0, p_1 + p_M] and maps interval index j
// (1-based from the top) to N − j + 1 replicas.
func assignForParam(p *core.Problem, u float64) []int {
	n := p.N()
	pop := p.Catalog.Popularities()
	m := len(pop)
	r := make([]int, m)
	if n == 1 {
		for i := range r {
			r[i] = 1
		}
		return r
	}
	top := pop[0] + pop[m-1]
	bounds := zipf.Partition(top, n, u) // bounds[0]=top ≥ … ≥ bounds[n]=0
	j := 1
	for i, pi := range pop { // pop is non-increasing, so j only advances
		for j < n && pi <= bounds[j] {
			j++
		}
		r[i] = n - j + 1
	}
	return r
}

// searchParam binary-searches the largest u whose assignment stays within the
// budget. The paper bounds the search space by u_max = log M / log N (all
// videos land in the first interval and get N replicas) and a symmetric lower
// bound where all videos get one replica; we start from those bounds and
// widen them defensively if the extremes are not yet saturated, then iterate
// until the interval is below the paper's termination granularity
// δ ≈ p_M − p_M·M/(M+1) (≈ M^−2 at θ = 1), with a hard cap of 200 iterations.
func searchParam(p *core.Problem, budget int) float64 {
	m := float64(p.M())
	n := float64(p.N())
	hi := math.Log(m)/math.Log(n) + 1
	lo := -hi
	total := func(u float64) int {
		sum := 0
		for _, r := range assignForParam(p, u) {
			sum += r
		}
		return sum
	}
	for total(hi) < budget && hi < 1e6 {
		hi *= 2
	}
	for total(lo) > budget && lo > -1e6 {
		lo *= 2
	}
	if total(lo) > budget {
		return lo // budget == M is always reachable; defensive fallback
	}
	eps := 1 / (m * m)
	for iter := 0; iter < 200 && hi-lo > eps; iter++ {
		mid := lo + (hi-lo)/2
		if total(mid) <= budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

var _ Replicator = ZipfInterval{}
