package avail

import (
	"math"
	"testing"
	"testing/quick"

	"vodcluster/internal/core"
	"vodcluster/internal/stats"
)

func TestFailureModelValidate(t *testing.T) {
	if err := (FailureModel{MTBF: 3600, MTTR: 600}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (FailureModel{MTBF: 0, MTTR: 600}).Validate(); err == nil {
		t.Fatal("zero MTBF accepted")
	}
	if err := (FailureModel{MTBF: 3600, MTTR: 0}).Validate(); err == nil {
		t.Fatal("zero MTTR accepted")
	}
}

func TestSteadyStateAvailability(t *testing.T) {
	f := FailureModel{MTBF: 9000, MTTR: 1000}
	if got := f.Availability(); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("availability %g, want 0.9", got)
	}
	if got := f.Unavailability(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("unavailability %g, want 0.1", got)
	}
	if math.Abs(f.Availability()+f.Unavailability()-1) > 1e-12 {
		t.Fatal("availability and unavailability must sum to 1")
	}
}

func TestSampledTimesMatchMeans(t *testing.T) {
	f := FailureModel{MTBF: 5000, MTTR: 500}
	rng := stats.NewRNG(3)
	var up, down stats.Summary
	for i := 0; i < 100000; i++ {
		up.Add(f.NextUptime(rng))
		down.Add(f.NextDowntime(rng))
	}
	if math.Abs(up.Mean()-5000) > 100 {
		t.Fatalf("mean uptime %g", up.Mean())
	}
	if math.Abs(down.Mean()-500) > 10 {
		t.Fatalf("mean downtime %g", down.Mean())
	}
}

func TestVideoUnavailability(t *testing.T) {
	if got := VideoUnavailability(0.1, 1); got != 0.1 {
		t.Fatalf("r=1: %g", got)
	}
	if got := VideoUnavailability(0.1, 3); math.Abs(got-1e-3) > 1e-15 {
		t.Fatalf("r=3: %g, want 0.001", got)
	}
	if got := VideoUnavailability(0.1, 0); got != 1 {
		t.Fatalf("r=0 must be always-unavailable: %g", got)
	}
}

// TestUnavailabilityGeometricProperty: adding a replica multiplies
// unavailability by u, for arbitrary u and r.
func TestUnavailabilityGeometricProperty(t *testing.T) {
	f := func(uRaw uint8, rRaw uint8) bool {
		u := 0.01 + 0.98*float64(uRaw)/255
		r := int(rRaw%8) + 1
		a := VideoUnavailability(u, r)
		b := VideoUnavailability(u, r+1)
		return math.Abs(b-a*u) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func availProblem(t testing.TB) (*core.Problem, *core.Layout) {
	t.Helper()
	c := core.Catalog{
		{ID: 0, Popularity: 0.6, BitRate: 4 * core.Mbps, Duration: 90 * core.Minute},
		{ID: 1, Popularity: 0.4, BitRate: 4 * core.Mbps, Duration: 90 * core.Minute},
	}
	p := &core.Problem{
		Catalog:            c,
		NumServers:         3,
		StoragePerServer:   2 * c[0].SizeBytes(),
		BandwidthPerServer: core.Gbps,
		ArrivalRate:        10.0 / core.Minute,
		PeakPeriod:         90 * core.Minute,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	l := core.NewLayout(2)
	l.Replicas = []int{2, 1}
	for _, pl := range []struct{ v, s int }{{0, 0}, {0, 1}, {1, 2}} {
		if err := l.Place(pl.v, pl.s); err != nil {
			t.Fatal(err)
		}
	}
	return p, l
}

func TestUnavailableRequestMass(t *testing.T) {
	p, l := availProblem(t)
	u := 0.1
	// 0.6·0.01 + 0.4·0.1 = 0.046.
	if got := UnavailableRequestMass(p, l, u); math.Abs(got-0.046) > 1e-12 {
		t.Fatalf("mass %g, want 0.046", got)
	}
	// More replication strictly reduces the mass.
	full := core.NewLayout(2)
	full.Replicas = []int{3, 3}
	for v := 0; v < 2; v++ {
		for s := 0; s < 3; s++ {
			if err := full.Place(v, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	if UnavailableRequestMass(p, full, u) >= UnavailableRequestMass(p, l, u) {
		t.Fatal("full replication did not reduce unavailable mass")
	}
}

func TestExpectedServedFraction(t *testing.T) {
	p, l := availProblem(t)
	f := FailureModel{MTBF: 9000, MTTR: 1000} // u = 0.1
	got := ExpectedServedFraction(p, l, f)
	// Light load (10/min vs saturation 3·250/90 ≈ 8.3/min... capacity binds).
	if got <= 0 || got > 1 {
		t.Fatalf("served fraction %g out of range", got)
	}
	// With negligible load the bound is availability-only: 1 − 0.046.
	light := p.Clone()
	light.ArrivalRate = 0.1 / core.Minute
	if g := ExpectedServedFraction(light, l, f); math.Abs(g-0.954) > 1e-9 {
		t.Fatalf("light-load served fraction %g, want 0.954", g)
	}
}

func TestMTTDLRaid5(t *testing.T) {
	// 5 disks, MTBF 1e6 h (in seconds), rebuild 1 h.
	mttdl, err := MTTDLRaid5(5, 1e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mttdl-1e12/20) > 1e-3 {
		t.Fatalf("MTTDL %g, want %g", mttdl, 1e12/20)
	}
	if _, err := MTTDLRaid5(2, 1e6, 1); err == nil {
		t.Fatal("2-disk RAID5 accepted")
	}
	if _, err := MTTDLRaid5(5, 0, 1); err == nil {
		t.Fatal("zero MTBF accepted")
	}
	// Bigger groups lose data sooner.
	big, _ := MTTDLRaid5(10, 1e6, 1)
	if big >= mttdl {
		t.Fatal("MTTDL must fall with group size")
	}
}

func TestDegreeForTarget(t *testing.T) {
	r, err := DegreeForTarget(0.1, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if r != 3 {
		t.Fatalf("degree %d, want 3 (0.1³ = 1e-3)", r)
	}
	r, err = DegreeForTarget(0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Fatalf("degree %d, want 1", r)
	}
	for _, bad := range [][2]float64{{0, 0.5}, {1, 0.5}, {0.1, 0}, {0.1, 1}} {
		if _, err := DegreeForTarget(bad[0], bad[1]); err == nil {
			t.Fatalf("bad inputs %v accepted", bad)
		}
	}
	// The returned degree actually meets the target.
	for _, u := range []float64{0.05, 0.2, 0.5} {
		for _, target := range []float64{0.01, 1e-4} {
			r, err := DegreeForTarget(u, target)
			if err != nil {
				t.Fatal(err)
			}
			if VideoUnavailability(u, r) > target {
				t.Fatalf("u=%g target=%g: degree %d misses target", u, target, r)
			}
			if r > 1 && VideoUnavailability(u, r-1) <= target {
				t.Fatalf("u=%g target=%g: degree %d not minimal", u, target, r)
			}
		}
	}
}

func TestFailureEventValidate(t *testing.T) {
	if err := (FailureEvent{At: 10, Server: 0, Down: 60}).Validate(4); err != nil {
		t.Fatal(err)
	}
	if err := (FailureEvent{At: -1, Server: 0}).Validate(4); err == nil {
		t.Fatal("negative time accepted")
	}
	if err := (FailureEvent{At: 0, Server: 4}).Validate(4); err == nil {
		t.Fatal("out-of-range server accepted")
	}
	if err := (FailureEvent{At: 0, Server: -1}).Validate(4); err == nil {
		t.Fatal("negative server accepted")
	}
}
