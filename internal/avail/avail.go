// Package avail models the availability dimension of the paper: server
// failures and repairs, the analytic relationship between replication degree
// and content availability, and durability of the per-server disk arrays.
//
// The paper motivates replication with "high availability ... low rejection
// rate and high replication degree" (§1, §3.2) but evaluates only the
// rejection side; this package supplies the failure substrate so the
// reliability claim can be exercised too. Servers fail and repair as
// independent alternating renewal processes with exponential times; a video
// is unavailable while every server holding a replica is down, and the
// expected fraction of requests arriving for unavailable content follows in
// closed form, which the simulator's measured drop/rejection rates can be
// checked against.
package avail

import (
	"fmt"
	"math"

	"vodcluster/internal/core"
	"vodcluster/internal/stats"
)

// FailureModel describes one server's alternating failure/repair process.
type FailureModel struct {
	// MTBF is the mean time between failures (up time), in seconds.
	MTBF float64
	// MTTR is the mean time to repair (down time), in seconds.
	MTTR float64
}

// Validate checks the model parameters.
func (f FailureModel) Validate() error {
	if f.MTBF <= 0 {
		return fmt.Errorf("avail: MTBF must be positive, got %g", f.MTBF)
	}
	if f.MTTR <= 0 {
		return fmt.Errorf("avail: MTTR must be positive, got %g", f.MTTR)
	}
	return nil
}

// Availability returns the steady-state probability that a server is up:
// MTBF / (MTBF + MTTR).
func (f FailureModel) Availability() float64 {
	return f.MTBF / (f.MTBF + f.MTTR)
}

// Unavailability returns 1 − Availability().
func (f FailureModel) Unavailability() float64 {
	return f.MTTR / (f.MTBF + f.MTTR)
}

// NextUptime samples the time until the next failure.
func (f FailureModel) NextUptime(rng *stats.RNG) float64 {
	return rng.Exponential(1 / f.MTBF)
}

// NextDowntime samples the repair duration.
func (f FailureModel) NextDowntime(rng *stats.RNG) float64 {
	return rng.Exponential(1 / f.MTTR)
}

// FailureEvent is one scripted server failure for deterministic scenarios:
// server Server fails at virtual time At and repairs Down seconds later.
// Down <= 0 means the server stays down for the rest of the run. Scripted
// events complement the stochastic FailureModel where a test or trace-replay
// experiment needs exact, reproducible failure timing.
type FailureEvent struct {
	// At is the failure instant in virtual seconds.
	At float64
	// Server is the index of the failing server.
	Server int
	// Down is the repair delay in seconds; <= 0 disables repair.
	Down float64
}

// Validate checks the event against a cluster of numServers servers.
func (e FailureEvent) Validate(numServers int) error {
	if e.At < 0 {
		return fmt.Errorf("avail: failure time must be non-negative, got %g", e.At)
	}
	if e.Server < 0 || e.Server >= numServers {
		return fmt.Errorf("avail: failure targets server %d of %d", e.Server, numServers)
	}
	return nil
}

// VideoUnavailability returns the steady-state probability that a video with
// r replicas on servers with the given per-server unavailability u is
// completely unreachable: u^r, assuming independent server failures (the
// paper's distributed-storage architecture has no shared components).
func VideoUnavailability(u float64, r int) float64 {
	if r <= 0 {
		return 1
	}
	return math.Pow(u, float64(r))
}

// UnavailableRequestMass returns the expected fraction of requests that
// arrive for content with every replica down under layout l:
//
//	Σ_i p_i · u^{r_i}
//
// This is the analytic availability counterpart of the rejection rate: it
// falls geometrically with the replication degree, which is exactly the
// paper's argument for replication as an availability mechanism.
func UnavailableRequestMass(p *core.Problem, l *core.Layout, u float64) float64 {
	mass := 0.0
	for i, v := range p.Catalog {
		mass += v.Popularity * VideoUnavailability(u, l.Replicas[i])
	}
	return mass
}

// ExpectedServedFraction returns a first-order estimate of the fraction of
// offered requests a failing cluster can still admit: requests for available
// content, scaled by the surviving aggregate bandwidth when the offered load
// exceeds it. It deliberately ignores imbalance (the simulator measures
// that), giving an optimistic analytic bound.
func ExpectedServedFraction(p *core.Problem, l *core.Layout, f FailureModel) float64 {
	u := f.Unavailability()
	available := 1 - UnavailableRequestMass(p, l, u)
	// Surviving capacity: (1−u)·N servers' outgoing bandwidth vs offered.
	sat, err := p.SaturationArrivalRate()
	if err != nil || p.ArrivalRate <= 0 {
		return available
	}
	capFraction := (1 - u) * sat / p.ArrivalRate
	if capFraction < available {
		return capFraction
	}
	return available
}

// MTTDLRaid5 returns the classic mean time to data loss of an n-disk RAID-5
// group with per-disk MTBF m and rebuild time t: m² / (n·(n−1)·t).
// It quantifies the paper's note that striping+parity inside a server covers
// disk failures while cross-server replication covers server failures.
func MTTDLRaid5(n int, mtbfDisk, rebuildSeconds float64) (float64, error) {
	if n < 3 {
		return 0, fmt.Errorf("avail: RAID5 needs at least 3 disks, got %d", n)
	}
	if mtbfDisk <= 0 || rebuildSeconds <= 0 {
		return 0, fmt.Errorf("avail: MTBF and rebuild time must be positive")
	}
	return mtbfDisk * mtbfDisk / (float64(n) * float64(n-1) * rebuildSeconds), nil
}

// DegreeForTarget returns the smallest uniform replica count r such that a
// video's unavailability u^r falls at or below the target. It inverts
// VideoUnavailability for capacity planning.
func DegreeForTarget(u, target float64) (int, error) {
	if u <= 0 || u >= 1 {
		return 0, fmt.Errorf("avail: server unavailability must be in (0,1), got %g", u)
	}
	if target <= 0 || target >= 1 {
		return 0, fmt.Errorf("avail: target must be in (0,1), got %g", target)
	}
	r := int(math.Ceil(math.Log(target) / math.Log(u)))
	if r < 1 {
		r = 1
	}
	return r, nil
}
