// Package hierarchy models the hierarchical server network of the paper's
// predecessor work (Zhou, Lüling & Xie, ICPP 2000 — the "media mapping
// problem" whose parallel simulated annealing the paper's §4.3 reuses), and
// the geographically distributed deployment §1 mentions: a tree of video
// servers with clients attached to the leaves. A request at a leaf is served
// by the nearest node on the path to the root that holds the video; serving
// from an ancestor consumes bandwidth on every tree link it crosses.
//
// The mapping problem assigns videos to nodes under per-node storage limits
// (the root pins a copy of everything, as the archive tier) to maximize
// locality: minimize expected hops per request, keep every link within its
// bandwidth, and keep every node within its streaming capacity. The package
// provides the analytic evaluation of a mapping, a greedy top-popularity
// baseline, and a simulated-annealing optimizer built on internal/anneal.
package hierarchy

import (
	"fmt"
)

// Node is one server in the tree.
type Node struct {
	// Parent is the parent node index, or -1 for the root.
	Parent int
	// StorageBytes limits the total size of videos mapped to the node.
	StorageBytes float64
	// StreamBW is the node's serving capacity in bits/s (streams it can
	// originate, wherever the clients are).
	StreamBW float64
	// UplinkBW is the capacity of the link to the parent in bits/s;
	// ignored for the root.
	UplinkBW float64
}

// Topology is a rooted server tree. Build with NewTopology; the node slice
// must place the root at index 0.
type Topology struct {
	nodes    []Node
	children [][]int
	leaves   []int
	depth    []int
}

// NewTopology validates the node list (index 0 is the root; parents must
// precede children) and computes the derived structure.
func NewTopology(nodes []Node) (*Topology, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("hierarchy: empty topology")
	}
	if nodes[0].Parent != -1 {
		return nil, fmt.Errorf("hierarchy: node 0 must be the root (Parent == -1)")
	}
	t := &Topology{
		nodes:    append([]Node(nil), nodes...),
		children: make([][]int, len(nodes)),
		depth:    make([]int, len(nodes)),
	}
	for i, n := range nodes {
		if i == 0 {
			continue
		}
		if n.Parent < 0 || n.Parent >= i {
			return nil, fmt.Errorf("hierarchy: node %d has parent %d; parents must precede children", i, n.Parent)
		}
		t.children[n.Parent] = append(t.children[n.Parent], i)
		t.depth[i] = t.depth[n.Parent] + 1
	}
	for i, n := range nodes {
		if n.StorageBytes < 0 || n.StreamBW <= 0 {
			return nil, fmt.Errorf("hierarchy: node %d has invalid capacities", i)
		}
		if i > 0 && n.UplinkBW <= 0 {
			return nil, fmt.Errorf("hierarchy: node %d has invalid uplink", i)
		}
		if len(t.children[i]) == 0 {
			t.leaves = append(t.leaves, i)
		}
	}
	return t, nil
}

// NewUniformTree builds a balanced tree with the given fanout and one spec
// per level (level 0 = root). Every node at a level shares that level's
// capacities.
func NewUniformTree(fanout int, levels []Node) (*Topology, error) {
	if fanout < 1 {
		return nil, fmt.Errorf("hierarchy: fanout must be ≥ 1, got %d", fanout)
	}
	if len(levels) == 0 {
		return nil, fmt.Errorf("hierarchy: need at least one level")
	}
	var nodes []Node
	prev := []int{-1}
	for lvl, spec := range levels {
		var cur []int
		count := 1
		if lvl > 0 {
			count = fanout
		}
		for _, parent := range prev {
			for k := 0; k < count; k++ {
				n := spec
				n.Parent = parent
				nodes = append(nodes, n)
				cur = append(cur, len(nodes)-1)
			}
		}
		prev = cur
	}
	return NewTopology(nodes)
}

// Len returns the number of nodes.
func (t *Topology) Len() int { return len(t.nodes) }

// Node returns node i's spec.
func (t *Topology) Node(i int) Node { return t.nodes[i] }

// Children returns node i's children (shared slice; do not modify).
func (t *Topology) Children(i int) []int { return t.children[i] }

// Leaves returns the leaf node indices (shared slice; do not modify).
func (t *Topology) Leaves() []int { return t.leaves }

// Depth returns node i's distance from the root.
func (t *Topology) Depth(i int) int { return t.depth[i] }

// Path returns the node sequence from node i up to and including the root.
func (t *Topology) Path(i int) []int {
	var path []int
	for i != -1 {
		path = append(path, i)
		i = t.nodes[i].Parent
	}
	return path
}
