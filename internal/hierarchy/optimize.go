package hierarchy

import (
	"fmt"

	"vodcluster/internal/anneal"
	"vodcluster/internal/stats"
)

// saProblem adapts the media mapping problem to the generic annealer —
// exactly how the predecessor paper attacked it, with MinimizeParallel
// standing in for parsa's parallel chains.
type saProblem struct {
	p *Problem
}

// Cost is the demand-weighted mean hop count plus heavy penalties for
// capacity violations. Lower is better; a perfect mapping serves everything
// locally at cost 0.
func (s saProblem) Cost(m *Mapping) float64 {
	e := s.p.Evaluate(m)
	cost := e.MeanHops
	if over := e.MaxLinkUtil - 1; over > 0 {
		cost += 100 * over
	}
	if over := e.MaxNodeUtil - 1; over > 0 {
		cost += 100 * over
	}
	if e.StorageViolation > 0 {
		cost += 1e6
	}
	return cost
}

// Clone implements anneal.Problem.
func (s saProblem) Clone(m *Mapping) *Mapping { return m.Clone() }

// Neighbor implements anneal.Problem: pick a random non-root node and either
// cache one more video there (evicting the least locally useful videos until
// it fits) or drop one. The root's full catalog is never touched.
func (s saProblem) Neighbor(m *Mapping, rng *stats.RNG) *Mapping {
	nm := m.Clone()
	p := s.p
	if p.Topo.Len() < 2 {
		return nm
	}
	n := 1 + rng.Intn(p.Topo.Len()-1)

	placed := make([]int, 0, len(p.Catalog))
	absent := make([]int, 0, len(p.Catalog))
	for v := range p.Catalog {
		if nm.Placed[n][v] {
			placed = append(placed, v)
		} else {
			absent = append(absent, v)
		}
	}

	if (rng.Bernoulli(0.6) || len(placed) == 0) && len(absent) > 0 {
		v := absent[rng.Intn(len(absent))]
		nm.Placed[n][v] = true
		// Evict the coldest residents until the node fits again.
		free := p.Topo.Node(n).StorageBytes - nm.StorageUsed(p, n)
		for free < 0 {
			coldest := -1
			for _, pv := range placed {
				if !nm.Placed[n][pv] || pv == v {
					continue
				}
				if coldest == -1 || p.Catalog[pv].Popularity < p.Catalog[coldest].Popularity {
					coldest = pv
				}
			}
			if coldest == -1 {
				nm.Placed[n][v] = false // the new video alone does not fit
				break
			}
			nm.Placed[n][coldest] = false
			free += p.Catalog[coldest].SizeBytes()
		}
	} else if len(placed) > 0 {
		nm.Placed[n][placed[rng.Intn(len(placed))]] = false
	}
	return nm
}

var _ anneal.Problem[*Mapping] = saProblem{}

// Optimize runs the simulated-annealing mapping search from the greedy
// baseline, with chains parallel restarts (chains ≤ 1 runs one chain).
func Optimize(p *Problem, opts anneal.Options, chains int) (*Mapping, Eval, error) {
	if err := p.Validate(); err != nil {
		return nil, Eval{}, err
	}
	initial := GreedyMapping(p)
	sp := saProblem{p: p}
	var (
		res anneal.Result[*Mapping]
		err error
	)
	if chains <= 1 {
		res, err = anneal.Minimize[*Mapping](sp, initial, opts)
	} else {
		res, err = anneal.MinimizeParallel[*Mapping](sp, initial, opts, chains)
	}
	if err != nil {
		return nil, Eval{}, fmt.Errorf("hierarchy: %w", err)
	}
	return res.Best, p.Evaluate(res.Best), nil
}
