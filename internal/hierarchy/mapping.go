package hierarchy

import (
	"fmt"

	"vodcluster/internal/core"
)

// Problem is one instance of the media mapping problem: a server tree, a
// catalog, and per-leaf demand.
type Problem struct {
	// Topo is the server tree.
	Topo *Topology
	// Catalog supplies video sizes, bit rates, durations, and the global
	// popularity ranking.
	Catalog core.Catalog
	// LeafRate is the request arrival rate (requests/s) at each leaf, in
	// Topo.Leaves() order.
	LeafRate []float64
	// LeafPopularity optionally gives each leaf its own popularity vector
	// (per leaf, per video) — regional taste. Nil means every leaf follows
	// the catalog's global popularities.
	LeafPopularity [][]float64
}

// Validate checks the instance.
func (p *Problem) Validate() error {
	if p.Topo == nil {
		return fmt.Errorf("hierarchy: nil topology")
	}
	if err := p.Catalog.Validate(); err != nil {
		return err
	}
	if len(p.LeafRate) != len(p.Topo.Leaves()) {
		return fmt.Errorf("hierarchy: %d leaf rates for %d leaves", len(p.LeafRate), len(p.Topo.Leaves()))
	}
	for i, r := range p.LeafRate {
		if r < 0 {
			return fmt.Errorf("hierarchy: leaf %d has negative rate", i)
		}
	}
	if p.LeafPopularity != nil {
		if len(p.LeafPopularity) != len(p.Topo.Leaves()) {
			return fmt.Errorf("hierarchy: %d leaf popularity vectors for %d leaves",
				len(p.LeafPopularity), len(p.Topo.Leaves()))
		}
		for i, pops := range p.LeafPopularity {
			if len(pops) != len(p.Catalog) {
				return fmt.Errorf("hierarchy: leaf %d popularity covers %d of %d videos", i, len(pops), len(p.Catalog))
			}
		}
	}
	// The root must be able to hold the whole catalog (archive tier).
	if p.Topo.Node(0).StorageBytes < p.Catalog.TotalSizeBytes() {
		return fmt.Errorf("hierarchy: root storage %.0f below catalog size %.0f",
			p.Topo.Node(0).StorageBytes, p.Catalog.TotalSizeBytes())
	}
	return nil
}

// popularityAt returns video v's popularity at leaf index li.
func (p *Problem) popularityAt(li, v int) float64 {
	if p.LeafPopularity != nil {
		return p.LeafPopularity[li][v]
	}
	return p.Catalog[v].Popularity
}

// Mapping assigns videos to nodes: Placed[n][v] reports whether node n holds
// a copy of video v. Node 0 (the root) always holds everything.
type Mapping struct {
	Placed [][]bool
}

// NewMapping returns the minimal valid mapping: only the root holds content.
func NewMapping(p *Problem) *Mapping {
	m := &Mapping{Placed: make([][]bool, p.Topo.Len())}
	for n := range m.Placed {
		m.Placed[n] = make([]bool, len(p.Catalog))
	}
	for v := range p.Catalog {
		m.Placed[0][v] = true
	}
	return m
}

// Clone deep-copies the mapping.
func (m *Mapping) Clone() *Mapping {
	c := &Mapping{Placed: make([][]bool, len(m.Placed))}
	for n := range m.Placed {
		c.Placed[n] = append([]bool(nil), m.Placed[n]...)
	}
	return c
}

// StorageUsed returns the bytes node n's mapped videos occupy.
func (m *Mapping) StorageUsed(p *Problem, n int) float64 {
	used := 0.0
	for v, placed := range m.Placed[n] {
		if placed {
			used += p.Catalog[v].SizeBytes()
		}
	}
	return used
}

// Eval is the analytic score of a mapping.
type Eval struct {
	// LocalHitRatio is the demand fraction served at the client's own leaf.
	LocalHitRatio float64
	// MeanHops is the demand-weighted mean tree distance to the serving
	// node (0 = local).
	MeanHops float64
	// MaxLinkUtil and MaxNodeUtil are the worst link and node utilizations
	// in [0, ∞); values above 1 are overloads.
	MaxLinkUtil float64
	MaxNodeUtil float64
	// StorageViolation is the total bytes mapped beyond node capacities.
	StorageViolation float64
}

// Feasible reports whether capacities are respected.
func (e Eval) Feasible() bool {
	return e.StorageViolation == 0 && e.MaxLinkUtil <= 1+1e-9 && e.MaxNodeUtil <= 1+1e-9
}

// Evaluate computes the expected steady-state behavior of a mapping: every
// leaf's demand for each video is served by the nearest ancestor holding it,
// loading that node's streaming capacity and every link on the way down.
func (p *Problem) Evaluate(m *Mapping) Eval {
	var e Eval
	nodeLoad := make([]float64, p.Topo.Len())
	linkLoad := make([]float64, p.Topo.Len()) // link i = edge (i, parent(i))
	totalDemand := 0.0
	localDemand := 0.0
	hopDemand := 0.0

	for li, leaf := range p.Topo.Leaves() {
		rate := p.LeafRate[li]
		if rate == 0 {
			continue
		}
		path := p.Topo.Path(leaf)
		for v := range p.Catalog {
			// Expected concurrent bandwidth of this (leaf, video) flow:
			// arrival rate × popularity × duration × bit rate.
			demand := rate * p.popularityAt(li, v) * p.Catalog[v].Duration * p.Catalog[v].BitRate
			if demand == 0 {
				continue
			}
			totalDemand += demand
			serving := -1
			hops := 0
			for h, n := range path {
				if m.Placed[n][v] {
					serving, hops = n, h
					break
				}
			}
			if serving == -1 {
				serving, hops = 0, len(path)-1 // root fallback (pinned anyway)
			}
			nodeLoad[serving] += demand
			for h := 0; h < hops; h++ {
				linkLoad[path[h]] += demand
			}
			hopDemand += float64(hops) * demand
			if hops == 0 {
				localDemand += demand
			}
		}
	}

	if totalDemand > 0 {
		e.LocalHitRatio = localDemand / totalDemand
		e.MeanHops = hopDemand / totalDemand
	}
	for n := 0; n < p.Topo.Len(); n++ {
		if u := nodeLoad[n] / p.Topo.Node(n).StreamBW; u > e.MaxNodeUtil {
			e.MaxNodeUtil = u
		}
		if n > 0 {
			if u := linkLoad[n] / p.Topo.Node(n).UplinkBW; u > e.MaxLinkUtil {
				e.MaxLinkUtil = u
			}
		}
		if over := m.StorageUsed(p, n) - p.Topo.Node(n).StorageBytes; over > 0 {
			e.StorageViolation += over
		}
	}
	return e
}

// GreedyMapping is the baseline: every non-root node independently caches
// the globally most popular videos that fit its storage (the root keeps the
// full catalog). It ignores what ancestors already hold, so popular titles
// are duplicated along every path — the inefficiency the SA mapping removes.
func GreedyMapping(p *Problem) *Mapping {
	m := NewMapping(p)
	for n := 1; n < p.Topo.Len(); n++ {
		free := p.Topo.Node(n).StorageBytes
		for v := range p.Catalog { // catalog is sorted most popular first
			size := p.Catalog[v].SizeBytes()
			if size <= free {
				m.Placed[n][v] = true
				free -= size
			}
		}
	}
	return m
}
