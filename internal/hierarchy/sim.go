package hierarchy

import (
	"fmt"

	"vodcluster/internal/sim"
	"vodcluster/internal/stats"
	"vodcluster/internal/zipf"
)

// SimConfig describes one discrete-event simulation of a mapped server tree.
// It cross-validates the analytic Evaluate: under light load the measured
// hit ratio and hop count converge to the analytic values, and under heavy
// load the capacity effects Evaluate only bounds (link and node saturation)
// become rejections.
type SimConfig struct {
	// Problem and Mapping define the tree, demand, and content placement.
	Problem *Problem
	Mapping *Mapping
	// Duration is the arrival window in seconds; 0 means one video
	// duration.
	Duration float64
	// Seed drives all randomness.
	Seed int64
}

// SimResult is the measured outcome.
type SimResult struct {
	// Requests and Rejected count arrivals and admission failures (no
	// reachable copy with node and link capacity).
	Requests, Rejected int
	// RejectionRate is Rejected / Requests.
	RejectionRate float64
	// LocalHitRatio is the fraction of accepted sessions served at the
	// client's own leaf; MeanHops their average tree distance.
	LocalHitRatio float64
	MeanHops      float64
	// PeakLinkUtil is the largest instantaneous uplink utilization seen.
	PeakLinkUtil float64
}

// Simulate runs the event simulation: Poisson arrivals at each leaf, videos
// drawn from the leaf's popularity vector, each session served by the
// nearest ancestor holding the video that has streaming capacity and link
// bandwidth along the whole path down — falling back to higher ancestors
// when a nearer copy is saturated, rejecting when none works.
func Simulate(cfg SimConfig) (SimResult, error) {
	var zero SimResult
	if cfg.Problem == nil || cfg.Mapping == nil {
		return zero, fmt.Errorf("hierarchy: Problem and Mapping are required")
	}
	p := cfg.Problem
	if err := p.Validate(); err != nil {
		return zero, err
	}
	m := cfg.Mapping
	if len(m.Placed) != p.Topo.Len() {
		return zero, fmt.Errorf("hierarchy: mapping covers %d nodes; topology has %d", len(m.Placed), p.Topo.Len())
	}
	duration := cfg.Duration
	if duration <= 0 {
		duration = p.Catalog[0].Duration
	}

	eng := sim.NewEngine()
	rng := stats.NewRNG(cfg.Seed)
	nodeUsed := make([]float64, p.Topo.Len())
	linkUsed := make([]float64, p.Topo.Len())

	var res SimResult
	hops := 0

	type leafSrc struct {
		leaf    int
		path    []int
		sampler *zipf.Sampler
		arrRNG  *stats.RNG
		vidRNG  *stats.RNG
		rate    float64
	}
	sources := make([]*leafSrc, 0, len(p.LeafRate))
	for li, leaf := range p.Topo.Leaves() {
		if p.LeafRate[li] <= 0 {
			continue
		}
		pops := make([]float64, len(p.Catalog))
		for v := range pops {
			pops[v] = p.popularityAt(li, v)
		}
		sampler, err := zipf.NewWeightedSampler(pops)
		if err != nil {
			return zero, err
		}
		sources = append(sources, &leafSrc{
			leaf:    leaf,
			path:    p.Topo.Path(leaf),
			sampler: sampler,
			arrRNG:  rng.Derive(int64(2 * li)),
			vidRNG:  rng.Derive(int64(2*li + 1)),
			rate:    p.LeafRate[li],
		})
	}
	if len(sources) == 0 {
		return zero, fmt.Errorf("hierarchy: no leaf has a positive arrival rate")
	}

	admit := func(src *leafSrc, video int) {
		res.Requests++
		bw := p.Catalog[video].BitRate
		for h, node := range src.path {
			if !m.Placed[node][video] {
				continue
			}
			if nodeUsed[node]+bw > p.Topo.Node(node).StreamBW+1e-6 {
				continue // this copy's server is saturated; try higher up
			}
			blocked := false
			for k := 0; k < h; k++ {
				link := src.path[k]
				if linkUsed[link]+bw > p.Topo.Node(link).UplinkBW+1e-6 {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
			// Admit: charge the serving node and every link crossed.
			nodeUsed[node] += bw
			for k := 0; k < h; k++ {
				link := src.path[k]
				linkUsed[link] += bw
				if u := linkUsed[link] / p.Topo.Node(link).UplinkBW; u > res.PeakLinkUtil {
					res.PeakLinkUtil = u
				}
			}
			hops += h
			if h == 0 {
				res.LocalHitRatio++ // counts for now; normalized below
			}
			servedNode := node
			servedHops := h
			pathCopy := src.path
			if err := eng.ScheduleAfter(p.Catalog[video].Duration, func(float64) {
				nodeUsed[servedNode] -= bw
				for k := 0; k < servedHops; k++ {
					linkUsed[pathCopy[k]] -= bw
				}
			}); err != nil {
				panic(err)
			}
			return
		}
		res.Rejected++
	}

	for _, src := range sources {
		src := src
		var next func(now float64)
		next = func(now float64) {
			t := now + src.arrRNG.Exponential(src.rate)
			if t > duration {
				return
			}
			if err := eng.Schedule(t, func(tt float64) {
				admit(src, src.sampler.Sample(src.vidRNG))
				next(tt)
			}); err != nil {
				panic(err)
			}
		}
		next(0)
	}

	eng.RunAll()

	accepted := res.Requests - res.Rejected
	if res.Requests > 0 {
		res.RejectionRate = float64(res.Rejected) / float64(res.Requests)
	}
	if accepted > 0 {
		res.LocalHitRatio /= float64(accepted)
		res.MeanHops = float64(hops) / float64(accepted)
	}
	return res, nil
}
