package hierarchy

import (
	"math"
	"testing"

	"vodcluster/internal/anneal"
	"vodcluster/internal/core"
	"vodcluster/internal/stats"
)

// testProblem: root + 2 mid + 4 leaves, 20 videos, leaves with modest cache
// space so locality has to be earned.
func testProblem(t testing.TB, leafReplicas int) *Problem {
	t.Helper()
	c, err := core.NewCatalog(20, 0.8, 4*core.Mbps, 90*core.Minute)
	if err != nil {
		t.Fatal(err)
	}
	size := c[0].SizeBytes()
	topo, err := NewUniformTree(2, []Node{
		{StorageBytes: 25 * size, StreamBW: 10 * core.Gbps, UplinkBW: 0},
		{StorageBytes: 8 * size, StreamBW: 2 * core.Gbps, UplinkBW: 2 * core.Gbps},
		{StorageBytes: float64(leafReplicas) * size, StreamBW: 2 * core.Gbps, UplinkBW: core.Gbps},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := &Problem{
		Topo:     topo,
		Catalog:  c,
		LeafRate: []float64{2.0 / core.Minute, 2.0 / core.Minute, 2.0 / core.Minute, 2.0 / core.Minute},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTopologyConstruction(t *testing.T) {
	topo, err := NewUniformTree(2, []Node{
		{StorageBytes: 1, StreamBW: 1},
		{StorageBytes: 1, StreamBW: 1, UplinkBW: 1},
		{StorageBytes: 1, StreamBW: 1, UplinkBW: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if topo.Len() != 7 {
		t.Fatalf("1+2+4 = 7 nodes, got %d", topo.Len())
	}
	if len(topo.Leaves()) != 4 {
		t.Fatalf("leaves = %v", topo.Leaves())
	}
	for _, leaf := range topo.Leaves() {
		if topo.Depth(leaf) != 2 {
			t.Fatalf("leaf %d at depth %d", leaf, topo.Depth(leaf))
		}
		path := topo.Path(leaf)
		if len(path) != 3 || path[len(path)-1] != 0 {
			t.Fatalf("path %v", path)
		}
	}
	if len(topo.Children(0)) != 2 {
		t.Fatalf("root children %v", topo.Children(0))
	}
}

func TestTopologyValidation(t *testing.T) {
	if _, err := NewTopology(nil); err == nil {
		t.Fatal("empty topology accepted")
	}
	if _, err := NewTopology([]Node{{Parent: 0}}); err == nil {
		t.Fatal("root with parent accepted")
	}
	if _, err := NewTopology([]Node{
		{Parent: -1, StorageBytes: 1, StreamBW: 1},
		{Parent: 5, StorageBytes: 1, StreamBW: 1, UplinkBW: 1},
	}); err == nil {
		t.Fatal("forward parent reference accepted")
	}
	if _, err := NewTopology([]Node{
		{Parent: -1, StorageBytes: 1, StreamBW: 0},
	}); err == nil {
		t.Fatal("zero stream bandwidth accepted")
	}
	if _, err := NewTopology([]Node{
		{Parent: -1, StorageBytes: 1, StreamBW: 1},
		{Parent: 0, StorageBytes: 1, StreamBW: 1, UplinkBW: 0},
	}); err == nil {
		t.Fatal("zero uplink accepted")
	}
	if _, err := NewUniformTree(0, []Node{{StorageBytes: 1, StreamBW: 1}}); err == nil {
		t.Fatal("zero fanout accepted")
	}
	if _, err := NewUniformTree(2, nil); err == nil {
		t.Fatal("no levels accepted")
	}
}

func TestProblemValidation(t *testing.T) {
	p := testProblem(t, 3)
	bad := *p
	bad.LeafRate = bad.LeafRate[:2]
	if err := bad.Validate(); err == nil {
		t.Fatal("wrong leaf-rate length accepted")
	}
	bad = *p
	bad.LeafRate = []float64{-1, 1, 1, 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative rate accepted")
	}
	bad = *p
	bad.LeafPopularity = make([][]float64, 2)
	if err := bad.Validate(); err == nil {
		t.Fatal("wrong popularity shape accepted")
	}
	// Root too small for the catalog.
	c := p.Catalog
	smallRoot, err := NewUniformTree(2, []Node{
		{StorageBytes: c[0].SizeBytes(), StreamBW: core.Gbps},
		{StorageBytes: c[0].SizeBytes(), StreamBW: core.Gbps, UplinkBW: core.Gbps},
	})
	if err != nil {
		t.Fatal(err)
	}
	bad = *p
	bad.Topo = smallRoot
	bad.LeafRate = []float64{1, 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("undersized root accepted")
	}
}

func TestRootOnlyMappingServesEverythingRemotely(t *testing.T) {
	p := testProblem(t, 3)
	m := NewMapping(p)
	e := p.Evaluate(m)
	if e.LocalHitRatio != 0 {
		t.Fatalf("root-only mapping has local hits: %g", e.LocalHitRatio)
	}
	if math.Abs(e.MeanHops-2) > 1e-9 {
		t.Fatalf("mean hops %g, want 2 (leaf depth)", e.MeanHops)
	}
	if e.StorageViolation != 0 {
		t.Fatal("root-only mapping violates storage")
	}
}

func TestFullLeafMappingIsAllLocal(t *testing.T) {
	p := testProblem(t, 20) // leaves hold the whole catalog
	m := NewMapping(p)
	for _, leaf := range p.Topo.Leaves() {
		for v := range p.Catalog {
			m.Placed[leaf][v] = true
		}
	}
	e := p.Evaluate(m)
	if math.Abs(e.LocalHitRatio-1) > 1e-9 || e.MeanHops != 0 {
		t.Fatalf("full leaf caches: hit %g hops %g", e.LocalHitRatio, e.MeanHops)
	}
	if e.MaxLinkUtil != 0 {
		t.Fatalf("no traffic should cross links: %g", e.MaxLinkUtil)
	}
}

func TestGreedyMappingProperties(t *testing.T) {
	p := testProblem(t, 3)
	m := GreedyMapping(p)
	e := p.Evaluate(m)
	if e.StorageViolation != 0 {
		t.Fatal("greedy mapping violates storage")
	}
	// Leaves hold the top-3 videos → the head of the Zipf mass is local.
	if e.LocalHitRatio <= 0.2 {
		t.Fatalf("greedy local hit ratio %g suspiciously low", e.LocalHitRatio)
	}
	rootOnly := p.Evaluate(NewMapping(p))
	if e.MeanHops >= rootOnly.MeanHops {
		t.Fatal("greedy caching did not reduce mean hops")
	}
	// Every leaf holds exactly the 3 hottest videos.
	for _, leaf := range p.Topo.Leaves() {
		for v := 0; v < 3; v++ {
			if !m.Placed[leaf][v] {
				t.Fatalf("leaf %d missing hot video %d", leaf, v)
			}
		}
	}
}

func TestOptimizeImprovesOnGreedy(t *testing.T) {
	p := testProblem(t, 3)
	greedy := p.Evaluate(GreedyMapping(p))
	opts := anneal.Options{InitialTemp: 0.5, Cooling: 0.92, PlateauSteps: 120, MinTemp: 1e-3, Seed: 5}
	best, e, err := Optimize(p, opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if e.StorageViolation != 0 {
		t.Fatal("optimized mapping violates storage")
	}
	if e.MeanHops > greedy.MeanHops+1e-9 {
		t.Fatalf("SA mean hops %g worse than greedy %g", e.MeanHops, greedy.MeanHops)
	}
	// Root copies must never be dropped.
	for v := range p.Catalog {
		if !best.Placed[0][v] {
			t.Fatalf("root lost video %d", v)
		}
	}
}

func TestOptimizeExploitsRegionalTaste(t *testing.T) {
	// Give each leaf a disjoint hot set: the optimizer should specialize
	// leaf caches and beat the one-size-fits-all greedy mapping clearly.
	p := testProblem(t, 3)
	m := len(p.Catalog)
	leaves := len(p.Topo.Leaves())
	pops := make([][]float64, leaves)
	for li := range pops {
		pops[li] = make([]float64, m)
		for v := 0; v < m; v++ {
			// Rotate the global ranking per leaf.
			pops[li][v] = p.Catalog[(v+li*5)%m].Popularity
		}
	}
	p.LeafPopularity = pops
	greedy := p.Evaluate(GreedyMapping(p))
	opts := anneal.Options{InitialTemp: 0.5, Cooling: 0.92, PlateauSteps: 150, MinTemp: 1e-3, Seed: 7}
	_, e, err := Optimize(p, opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if e.MeanHops >= greedy.MeanHops {
		t.Fatalf("SA (%g hops) failed to beat popularity-blind greedy (%g) under regional taste",
			e.MeanHops, greedy.MeanHops)
	}
	if e.LocalHitRatio <= greedy.LocalHitRatio {
		t.Fatalf("SA hit ratio %g not above greedy %g", e.LocalHitRatio, greedy.LocalHitRatio)
	}
}

func TestNeighborKeepsRootPinned(t *testing.T) {
	p := testProblem(t, 3)
	sp := saProblem{p: p}
	m := GreedyMapping(p)
	rng := stats.NewRNG(3)
	for i := 0; i < 2000; i++ {
		m = sp.Neighbor(m, rng)
		for v := range p.Catalog {
			if !m.Placed[0][v] {
				t.Fatalf("step %d: root lost video %d", i, v)
			}
		}
	}
	// Storage is maintained by construction.
	for n := 1; n < p.Topo.Len(); n++ {
		if m.StorageUsed(p, n) > p.Topo.Node(n).StorageBytes+1e-6 {
			t.Fatalf("node %d over storage after random walk", n)
		}
	}
}

func TestMappingClone(t *testing.T) {
	p := testProblem(t, 3)
	m := GreedyMapping(p)
	c := m.Clone()
	c.Placed[1][0] = !c.Placed[1][0]
	if m.Placed[1][0] == c.Placed[1][0] {
		t.Fatal("clone shares storage")
	}
}

func BenchmarkEvaluateMapping(b *testing.B) {
	c, err := core.NewCatalog(200, 0.8, 4*core.Mbps, 90*core.Minute)
	if err != nil {
		b.Fatal(err)
	}
	size := c[0].SizeBytes()
	topo, err := NewUniformTree(4, []Node{
		{StorageBytes: 220 * size, StreamBW: 20 * core.Gbps},
		{StorageBytes: 40 * size, StreamBW: 4 * core.Gbps, UplinkBW: 4 * core.Gbps},
		{StorageBytes: 20 * size, StreamBW: 2 * core.Gbps, UplinkBW: 2 * core.Gbps},
	})
	if err != nil {
		b.Fatal(err)
	}
	rates := make([]float64, len(topo.Leaves()))
	for i := range rates {
		rates[i] = 1.0 / core.Minute
	}
	p := &Problem{Topo: topo, Catalog: c, LeafRate: rates}
	if err := p.Validate(); err != nil {
		b.Fatal(err)
	}
	m := GreedyMapping(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Evaluate(m)
	}
}
