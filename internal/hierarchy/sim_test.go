package hierarchy

import (
	"math"
	"testing"

	"vodcluster/internal/core"
)

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(SimConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	p := testProblem(t, 3)
	badMapping := &Mapping{Placed: make([][]bool, 2)}
	if _, err := Simulate(SimConfig{Problem: p, Mapping: badMapping}); err == nil {
		t.Fatal("wrong-shape mapping accepted")
	}
	zeroRates := *p
	zeroRates.LeafRate = make([]float64, len(p.LeafRate))
	if _, err := Simulate(SimConfig{Problem: &zeroRates, Mapping: NewMapping(p)}); err == nil {
		t.Fatal("all-zero leaf rates accepted")
	}
}

// TestSimulateMatchesAnalyticLightLoad: with capacities far above demand the
// simulated hit ratio and hop count must converge to the analytic Evaluate.
func TestSimulateMatchesAnalyticLightLoad(t *testing.T) {
	p := testProblem(t, 3)
	m := GreedyMapping(p)
	e := p.Evaluate(m)

	var hitSum, hopSum float64
	runs := 8
	for i := 0; i < runs; i++ {
		res, err := Simulate(SimConfig{Problem: p, Mapping: m, Duration: 4 * p.Catalog[0].Duration, Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Rejected != 0 {
			t.Fatalf("light load rejected %d", res.Rejected)
		}
		hitSum += res.LocalHitRatio
		hopSum += res.MeanHops
	}
	hit := hitSum / float64(runs)
	hop := hopSum / float64(runs)
	if math.Abs(hit-e.LocalHitRatio) > 0.05 {
		t.Fatalf("simulated hit ratio %.3f vs analytic %.3f", hit, e.LocalHitRatio)
	}
	if math.Abs(hop-e.MeanHops) > 0.1 {
		t.Fatalf("simulated mean hops %.3f vs analytic %.3f", hop, e.MeanHops)
	}
}

// TestSimulateRootOnlyMapping: everything crosses the whole tree.
func TestSimulateRootOnlyMapping(t *testing.T) {
	p := testProblem(t, 3)
	res, err := Simulate(SimConfig{Problem: p, Mapping: NewMapping(p), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.LocalHitRatio != 0 {
		t.Fatalf("root-only mapping produced local hits: %g", res.LocalHitRatio)
	}
	if res.Requests > 0 && res.Rejected == 0 && math.Abs(res.MeanHops-2) > 1e-9 {
		t.Fatalf("mean hops %g, want 2", res.MeanHops)
	}
}

// TestSimulateSaturatedLinksReject: shrink the leaf uplinks so the root-only
// mapping cannot carry the demand; rejections must appear, and the SA-style
// local caching must relieve them.
func TestSimulateSaturatedLinksReject(t *testing.T) {
	c, err := core.NewCatalog(10, 0.8, 4*core.Mbps, 90*core.Minute)
	if err != nil {
		t.Fatal(err)
	}
	size := c[0].SizeBytes()
	topo, err := NewUniformTree(2, []Node{
		{StorageBytes: 12 * size, StreamBW: 10 * core.Gbps},
		{StorageBytes: 4 * size, StreamBW: core.Gbps, UplinkBW: 100 * core.Mbps},
		{StorageBytes: 4 * size, StreamBW: core.Gbps, UplinkBW: 40 * core.Mbps}, // 10 concurrent remote streams
	})
	if err != nil {
		t.Fatal(err)
	}
	p := &Problem{
		Topo:     topo,
		Catalog:  c,
		LeafRate: []float64{1.0 / core.Minute, 1.0 / core.Minute, 1.0 / core.Minute, 1.0 / core.Minute},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// ~90 expected concurrent streams per leaf vs 10 remote slots.
	rootOnly, err := Simulate(SimConfig{Problem: p, Mapping: NewMapping(p), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rootOnly.RejectionRate < 0.5 {
		t.Fatalf("starved uplinks rejected only %.2f", rootOnly.RejectionRate)
	}
	cached, err := Simulate(SimConfig{Problem: p, Mapping: GreedyMapping(p), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cached.RejectionRate >= rootOnly.RejectionRate {
		t.Fatalf("leaf caching did not relieve the uplinks: %.2f vs %.2f",
			cached.RejectionRate, rootOnly.RejectionRate)
	}
	if rootOnly.PeakLinkUtil > 1+1e-9 {
		t.Fatalf("link capacity violated: %g", rootOnly.PeakLinkUtil)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	p := testProblem(t, 3)
	m := GreedyMapping(p)
	a, err := Simulate(SimConfig{Problem: p, Mapping: m, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(SimConfig{Problem: p, Mapping: m, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Requests != b.Requests || a.Rejected != b.Rejected || a.MeanHops != b.MeanHops {
		t.Fatal("hierarchy simulation not deterministic")
	}
}
