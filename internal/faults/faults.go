// Package faults is the fault-injection layer of the live serving stack: a
// scriptable schedule of backend fail/recover/slow/drain events pinned to
// trace (virtual) times, and a thread-safe Injector that makes injected
// conditions observable to health probes. The schedule's JSON format is what
// `vodserved -faults` and `vodload -faults` load, and its FailAt projection
// is what cross-validation feeds to sim.Run so the simulator injects the
// same failures at the same virtual times.
package faults

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"vodcluster/internal/avail"
)

// Actions a scheduled event can take.
const (
	// ActionFail crashes a backend (serve.Server.FailBackend).
	ActionFail = "fail"
	// ActionRecover brings a crashed backend back (RecoverBackend).
	ActionRecover = "recover"
	// ActionSlow makes a backend's health probes stall for SlowMS each —
	// a gray failure the flap-damping thresholds have to ride out or
	// confirm. It requires an Injector-backed prober to observe.
	ActionSlow = "slow"
	// ActionDrain drains a backend cooperatively (DrainBackend).
	ActionDrain = "drain"
	// ActionRestore restores a drained backend (RestoreBackend).
	ActionRestore = "restore"
)

// Event is one scripted fault at a virtual (trace) time.
type Event struct {
	// At is the event instant in virtual seconds from the start of the run.
	At float64 `json:"at"`
	// Action is one of fail, recover, slow, drain, restore.
	Action string `json:"action"`
	// Backend is the target server index.
	Backend int `json:"backend"`
	// SlowMS is the per-probe stall for slow events, milliseconds; 0 clears
	// an earlier slow.
	SlowMS int `json:"slow_ms,omitempty"`
}

// Schedule is a fault script: events applied in time order.
type Schedule struct {
	Events []Event `json:"events"`
}

// Load parses a JSON schedule and sorts its events by time.
func Load(r io.Reader) (*Schedule, error) {
	var s Schedule
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
	return &s, nil
}

// Validate checks every event against the cluster size.
func (s *Schedule) Validate(numServers int) error {
	for i, e := range s.Events {
		if e.At < 0 {
			return fmt.Errorf("faults: event %d at negative time %g", i, e.At)
		}
		if e.Backend < 0 || e.Backend >= numServers {
			return fmt.Errorf("faults: event %d targets backend %d of %d", i, e.Backend, numServers)
		}
		switch e.Action {
		case ActionFail, ActionRecover, ActionDrain, ActionRestore:
		case ActionSlow:
			if e.SlowMS < 0 {
				return fmt.Errorf("faults: event %d has negative slow_ms %d", i, e.SlowMS)
			}
		default:
			return fmt.Errorf("faults: event %d has unknown action %q", i, e.Action)
		}
	}
	return nil
}

// FailAt projects the schedule onto the simulator's scripted-failure config:
// each fail event becomes an avail.FailureEvent whose Down is the delay to
// that backend's next recover event (0 — down for the rest of the run — when
// none follows). Slow and drain events have no simulator analogue and are
// omitted: a slow backend still serves, and cross-validation scenarios use
// crash faults.
func (s *Schedule) FailAt() []avail.FailureEvent {
	var out []avail.FailureEvent
	for i, e := range s.Events {
		if e.Action != ActionFail {
			continue
		}
		ev := avail.FailureEvent{At: e.At, Server: e.Backend}
		for _, later := range s.Events[i+1:] {
			if later.Action == ActionRecover && later.Backend == e.Backend {
				ev.Down = later.At - e.At
				break
			}
		}
		out = append(out, ev)
	}
	return out
}

// FirstFailAt returns the virtual time of the earliest fail event, or -1
// when the schedule crashes nothing — the boundary post-failure measurements
// (sim Warmup, live dispatch-offset filtering) cut at.
func (s *Schedule) FirstFailAt() float64 {
	for _, e := range s.Events {
		if e.Action == ActionFail {
			return e.At
		}
	}
	return -1
}

// Run replays the schedule against apply on the compressed wall clock: an
// event at virtual time t fires t/compress wall seconds after the call.
// Apply errors abort the replay; ctx cancellation stops it silently. Run
// blocks until the last event fired, so callers usually run it in a
// goroutine alongside the trace replay they started at the same instant.
func (s *Schedule) Run(ctx context.Context, compress float64, apply func(Event) error) error {
	if compress <= 0 {
		compress = 1
	}
	start := time.Now()
	for _, e := range s.Events {
		wall := time.Duration(e.At / compress * float64(time.Second))
		delay := wall - time.Since(start)
		if delay > 0 {
			t := time.NewTimer(delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil
			}
		}
		if err := apply(e); err != nil {
			return fmt.Errorf("faults: applying %s on backend %d at t=%g: %w", e.Action, e.Backend, e.At, err)
		}
	}
	return nil
}
