package faults

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Injector is the thread-safe fault state health probes observe: which
// backends are crashed, and which stall probes (gray failure). It implements
// serve.Prober structurally — Probe fails for crashed backends and sleeps
// out the configured stall for slow ones — so wiring an Injector as the
// daemon's prober closes the loop: injected faults are *detected* by the
// health checker rather than applied behind its back, exercising the
// suspect/confirm path end to end.
type Injector struct {
	mu      sync.Mutex
	crashed map[int]bool
	slow    map[int]time.Duration
}

// NewInjector builds an empty injector (all backends healthy).
func NewInjector() *Injector {
	return &Injector{crashed: make(map[int]bool), slow: make(map[int]time.Duration)}
}

// Crash marks backend b crashed: probes fail until Recover.
func (in *Injector) Crash(b int) {
	in.mu.Lock()
	in.crashed[b] = true
	in.mu.Unlock()
}

// Recover clears backend b's crash (and any slowness).
func (in *Injector) Recover(b int) {
	in.mu.Lock()
	delete(in.crashed, b)
	delete(in.slow, b)
	in.mu.Unlock()
}

// Slow stalls every probe of backend b by d; d <= 0 clears the stall.
func (in *Injector) Slow(b int, d time.Duration) {
	in.mu.Lock()
	if d <= 0 {
		delete(in.slow, b)
	} else {
		in.slow[b] = d
	}
	in.mu.Unlock()
}

// Crashed reports whether backend b is currently crashed.
func (in *Injector) Crashed(b int) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed[b]
}

// Probe implements the health-prober contract against the injected state:
// crashed backends fail immediately, slow backends stall for the configured
// delay (failing if ctx expires first), healthy backends succeed.
func (in *Injector) Probe(ctx context.Context, b int) error {
	in.mu.Lock()
	crashed := in.crashed[b]
	stall := in.slow[b]
	in.mu.Unlock()
	if crashed {
		return fmt.Errorf("faults: backend %d is crashed", b)
	}
	if stall > 0 {
		t := time.NewTimer(stall)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return fmt.Errorf("faults: probe of backend %d timed out after injected stall: %w", b, ctx.Err())
		}
	}
	return nil
}
