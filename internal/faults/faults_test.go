package faults

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestLoadSortsEvents: events parse in file order but come out time-sorted,
// and the stable sort keeps same-instant events in file order.
func TestLoadSortsEvents(t *testing.T) {
	in := `{"events": [
		{"at": 300, "action": "recover", "backend": 1},
		{"at": 100, "action": "fail", "backend": 1},
		{"at": 100, "action": "drain", "backend": 0}
	]}`
	s, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 3 {
		t.Fatalf("loaded %d events, want 3", len(s.Events))
	}
	if s.Events[0].Action != ActionFail || s.Events[0].At != 100 {
		t.Fatalf("first event = %+v, want the t=100 fail", s.Events[0])
	}
	if s.Events[1].Action != ActionDrain {
		t.Fatalf("stable sort reordered same-instant events: %+v", s.Events[1])
	}
	if s.Events[2].Action != ActionRecover {
		t.Fatalf("last event = %+v, want the t=300 recover", s.Events[2])
	}
}

// TestLoadRejectsUnknownFields: a typo'd key is an error, not a silent no-op
// fault script.
func TestLoadRejectsUnknownFields(t *testing.T) {
	in := `{"events": [{"at": 10, "action": "fail", "bakend": 2}]}`
	if _, err := Load(strings.NewReader(in)); err == nil {
		t.Fatal("schedule with unknown field loaded")
	}
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Fatal("non-JSON schedule loaded")
	}
}

func TestValidate(t *testing.T) {
	good := &Schedule{Events: []Event{
		{At: 0, Action: ActionDrain, Backend: 0},
		{At: 5, Action: ActionSlow, Backend: 1, SlowMS: 50},
		{At: 10, Action: ActionFail, Backend: 2},
		{At: 20, Action: ActionRecover, Backend: 2},
		{At: 30, Action: ActionRestore, Backend: 0},
	}}
	if err := good.Validate(3); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	bad := []Schedule{
		{Events: []Event{{At: -1, Action: ActionFail, Backend: 0}}},
		{Events: []Event{{At: 1, Action: ActionFail, Backend: -1}}},
		{Events: []Event{{At: 1, Action: ActionFail, Backend: 3}}},
		{Events: []Event{{At: 1, Action: "explode", Backend: 0}}},
		{Events: []Event{{At: 1, Action: ActionSlow, Backend: 0, SlowMS: -5}}},
	}
	for i, s := range bad {
		if err := s.Validate(3); err == nil {
			t.Fatalf("bad schedule %d (%+v) validated", i, s.Events[0])
		}
	}
}

// TestFailAt: fails project to simulator failure events, each Down spanning
// to the same backend's next recover (0 when it never recovers); drains and
// slows are omitted.
func TestFailAt(t *testing.T) {
	s := &Schedule{Events: []Event{
		{At: 5, Action: ActionDrain, Backend: 0},
		{At: 10, Action: ActionFail, Backend: 1},
		{At: 15, Action: ActionSlow, Backend: 2, SlowMS: 20},
		{At: 20, Action: ActionFail, Backend: 2},
		{At: 25, Action: ActionRecover, Backend: 1}, // pairs with t=10, not t=20
		{At: 40, Action: ActionRecover, Backend: 2},
	}}
	got := s.FailAt()
	if len(got) != 2 {
		t.Fatalf("projected %d failure events, want 2: %+v", len(got), got)
	}
	if got[0].Server != 1 || got[0].At != 10 || got[0].Down != 15 {
		t.Fatalf("first failure = %+v, want server 1 at 10 down 15", got[0])
	}
	if got[1].Server != 2 || got[1].At != 20 || got[1].Down != 20 {
		t.Fatalf("second failure = %+v, want server 2 at 20 down 20", got[1])
	}

	forever := &Schedule{Events: []Event{{At: 7, Action: ActionFail, Backend: 0}}}
	if got := forever.FailAt(); len(got) != 1 || got[0].Down != 0 {
		t.Fatalf("unrecovered fail projected %+v, want Down 0", got)
	}
}

func TestFirstFailAt(t *testing.T) {
	s := &Schedule{Events: []Event{
		{At: 5, Action: ActionDrain, Backend: 0},
		{At: 12, Action: ActionFail, Backend: 1},
		{At: 30, Action: ActionFail, Backend: 0},
	}}
	if got := s.FirstFailAt(); got != 12 {
		t.Fatalf("FirstFailAt = %g, want 12", got)
	}
	crashless := &Schedule{Events: []Event{{At: 5, Action: ActionDrain, Backend: 0}}}
	if got := crashless.FirstFailAt(); got != -1 {
		t.Fatalf("FirstFailAt of a crashless schedule = %g, want -1", got)
	}
}

// TestRunFiresInOrder: Run applies events in time order on the compressed
// clock and reports the virtual times faithfully.
func TestRunFiresInOrder(t *testing.T) {
	s := &Schedule{Events: []Event{
		{At: 100, Action: ActionFail, Backend: 0},
		{At: 200, Action: ActionRecover, Backend: 0},
	}}
	start := time.Now()
	var fired []Event
	err := s.Run(context.Background(), 1e4, func(e Event) error {
		fired = append(fired, e)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("both events fired in %s; the t=200 event should wait 20ms of wall time", elapsed)
	}
	if len(fired) != 2 || fired[0].Action != ActionFail || fired[1].Action != ActionRecover {
		t.Fatalf("fired %+v, want fail then recover", fired)
	}
}

// TestRunAbortsOnApplyError: an apply error stops the replay and surfaces
// with the event's context.
func TestRunAbortsOnApplyError(t *testing.T) {
	s := &Schedule{Events: []Event{
		{At: 0, Action: ActionFail, Backend: 3},
		{At: 1e9, Action: ActionRecover, Backend: 3}, // must never be reached
	}}
	boom := errors.New("boom")
	calls := 0
	err := s.Run(context.Background(), 1e6, func(Event) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want wrapped boom", err)
	}
	if calls != 1 {
		t.Fatalf("apply ran %d times after the error, want 1", calls)
	}
}

// TestRunStopsOnContextCancel: cancellation ends the replay silently.
func TestRunStopsOnContextCancel(t *testing.T) {
	s := &Schedule{Events: []Event{{At: 1e9, Action: ActionFail, Backend: 0}}}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- s.Run(ctx, 1, func(Event) error {
			t.Error("event fired despite cancellation")
			return nil
		})
	}()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("canceled Run returned %v, want nil", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
}

// TestInjectorProbe: the injector's probe contract — crashed backends fail,
// slow backends stall (and fail when the probe context expires first),
// recover clears everything.
func TestInjectorProbe(t *testing.T) {
	in := NewInjector()
	ctx := context.Background()
	if err := in.Probe(ctx, 0); err != nil {
		t.Fatalf("probe of a healthy backend failed: %v", err)
	}

	in.Crash(0)
	if !in.Crashed(0) {
		t.Fatal("Crashed(0) = false after Crash")
	}
	if err := in.Probe(ctx, 0); err == nil {
		t.Fatal("probe of a crashed backend succeeded")
	}
	if err := in.Probe(ctx, 1); err != nil {
		t.Fatalf("crash of backend 0 leaked into backend 1's probe: %v", err)
	}

	in.Recover(0)
	if in.Crashed(0) {
		t.Fatal("Crashed(0) = true after Recover")
	}
	if err := in.Probe(ctx, 0); err != nil {
		t.Fatalf("probe after recover failed: %v", err)
	}

	// A stalled probe fails when its context expires mid-stall…
	in.Slow(2, 500*time.Millisecond)
	short, cancel := context.WithTimeout(ctx, 5*time.Millisecond)
	defer cancel()
	if err := in.Probe(short, 2); err == nil {
		t.Fatal("stalled probe beat its context deadline")
	}
	// …and succeeds, slowly, when given time.
	in.Slow(2, time.Millisecond)
	start := time.Now()
	if err := in.Probe(ctx, 2); err != nil {
		t.Fatalf("stalled probe with headroom failed: %v", err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("slow probe returned without serving the stall")
	}
	// Slow(b, 0) clears the stall.
	in.Slow(2, 0)
	start = time.Now()
	if err := in.Probe(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("cleared stall still delays probes")
	}
}
