package vodcluster_test

import (
	"context"
	"testing"
	"time"

	"net/http/httptest"

	"vodcluster/internal/core"
	"vodcluster/internal/rebalance"
	"vodcluster/internal/serve"
	"vodcluster/internal/workload"
)

// driftScenario builds the demand-drift cluster: 8 videos with Zipf(1.2)
// popularity on 4 servers, each 40 Mb/s (10 concurrent streams), with the
// replica counts matched to the INITIAL popularity — the hot head gets 3
// copies, the runner-up 2, the tail singletons. The mid-trace rotation then
// moves the head's demand onto a singleton video, which one link cannot
// carry: exactly the drift a static layout cannot answer and the rebalancer
// exists to.
func driftScenario(t *testing.T) (*core.Problem, *core.Layout) {
	t.Helper()
	catalog, err := core.NewCatalog(8, 1.2, 4*core.Mbps, 10*core.Minute)
	if err != nil {
		t.Fatal(err)
	}
	size := catalog[0].SizeBytes()
	p := &core.Problem{
		Catalog:            catalog,
		NumServers:         4,
		StoragePerServer:   6 * size,
		BandwidthPerServer: 40 * core.Mbps,
		BackboneBandwidth:  1000 * core.Mbps,
		ArrivalRate:        32.0 / (10 * core.Minute), // ~32 offered streams vs 40 slots
		PeakPeriod:         60 * core.Minute,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	placement := [][]int{
		0: {0, 1, 2},
		1: {3, 0},
		2: {1},
		3: {2},
		4: {3},
		5: {0},
		6: {1},
		7: {2},
	}
	layout := core.NewLayout(len(catalog))
	for v, servers := range placement {
		layout.Replicas[v] = len(servers)
		for _, s := range servers {
			if err := layout.Place(v, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	return p, layout
}

// driftDrillTrace materializes the drill workload: Poisson arrivals over the
// peak hour with a rank rotation of half the catalog at driftAt, so the
// videos that were the cold tail carry the head's demand afterwards.
func driftDrillTrace(t *testing.T, p *core.Problem, driftAt float64) *workload.Trace {
	t.Helper()
	gen, err := workload.NewGenerator(workload.Poisson{Lambda: p.ArrivalRate}, p.M(), 1.2)
	if err != nil {
		t.Fatal(err)
	}
	tr := gen.Generate(p.PeakPeriod, 7)
	if len(tr.Requests) < 120 {
		t.Fatalf("trace has only %d requests", len(tr.Requests))
	}
	drift := workload.Drift{At: driftAt} // default rotation: half the catalog
	tr, err = drift.Apply(tr)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// replayDrill replays the trace against a fresh daemon, with or without the
// placement controller attached, and audits the accounting after the drain:
// whatever the rebalancer moved, every bandwidth gauge and the session
// registry must read zero once the cluster quiesces.
func replayDrill(t *testing.T, tr *workload.Trace, compress float64, withRebalance bool) (*serve.Report, *rebalance.Controller) {
	t.Helper()
	p, layout := driftScenario(t)
	srv, err := serve.New(p, layout, serve.Config{Policy: "least-loaded", Compress: compress})
	if err != nil {
		t.Fatal(err)
	}
	var ctl *rebalance.Controller
	if withRebalance {
		ctl, err = rebalance.New(srv, rebalance.Config{
			Interval:    60, // one control round per virtual minute
			Decay:       0.5,
			MinObserved: 4,
			CopyRate:    100 * core.Mbps,
			Budget:      200 * core.Mbps,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctl.Start()
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer srv.Shutdown()

	ctx := context.Background()
	rep, err := serve.NewClient(hs.URL).Replay(ctx, tr, compress)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors > 0 {
		t.Fatalf("%d transport errors during replay; first: %v", rep.Errors, rep.FirstError)
	}
	if rep.Requests != len(tr.Requests) {
		t.Fatalf("replay settled %d of %d requests", rep.Requests, len(tr.Requests))
	}

	dctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	if ctl != nil {
		ctl.Stop() // aborts in-flight copies and releases their reservations
	}
	if n := srv.Active(); n != 0 {
		t.Fatalf("%d sessions still registered after drain", n)
	}
	c := srv.Cluster()
	for s := 0; s < c.Servers(); s++ {
		if used := c.Used(s); used != 0 {
			t.Fatalf("server %d leaks %d bit/s after quiesce", s, used)
		}
		if active := c.Active(s); active != 0 {
			t.Fatalf("server %d leaks %d active-stream counts after quiesce", s, active)
		}
	}
	if used := c.BackboneUsed(); used != 0 {
		t.Fatalf("backbone leaks %d bit/s after quiesce", used)
	}
	return rep, ctl
}

// TestRebalanceDriftDrill is the end-to-end proof behind the rebalance-smoke
// target, run under the race detector: the same demand-drift trace replayed
// over HTTP against a static daemon and against one running the placement
// controller. After the mid-trace popularity rotation the static layout
// funnels the new head video through its single replica's link and rejects
// the overflow; the controller re-estimates demand from the admission
// stream, re-anneals, and migrates copies toward the shifted head, so the
// post-shift rejection count must come out measurably lower — while staying
// inside its copy-bandwidth budget and leaking nothing once drained.
func TestRebalanceDriftDrill(t *testing.T) {
	const (
		compress = 600.0
		driftAt  = 1200.0
	)
	p, _ := driftScenario(t)
	tr := driftDrillTrace(t, p, driftAt)

	static, _ := replayDrill(t, tr, compress, false)
	rebal, ctl := replayDrill(t, tr, compress, true)

	statN, statRej := static.Since(driftAt)
	rebN, rebRej := rebal.Since(driftAt)
	if statN == 0 || rebN == 0 {
		t.Fatalf("no post-shift decisions (static %d, rebalance %d)", statN, rebN)
	}
	t.Logf("post-shift rejections: static %d/%d, rebalance %d/%d (migrations %d, evictions %d, rounds %d)",
		statRej, statN, rebRej, rebN, ctl.Migrations(), ctl.Evictions(), ctl.Rounds())
	if statRej == 0 {
		t.Fatal("static layout rejected nothing post-shift; the drill is not stressing the cluster")
	}
	if rebRej >= statRej {
		t.Fatalf("rebalancing did not lower post-shift rejections: static %d, rebalance %d", statRej, rebRej)
	}

	// The improvement must have come from actual migrations, journaled, with
	// the layout version advanced past the seed and the copy bandwidth inside
	// the budget the whole way.
	if ctl.Migrations() < 1 {
		t.Fatalf("controller landed %d migrations, want at least 1", ctl.Migrations())
	}
	status := ctl.Status()
	if status.LayoutVersion <= 1 {
		t.Fatalf("layout version %d after migrations, want > 1", status.LayoutVersion)
	}
	completed := 0
	for _, a := range status.Journal {
		if a.Action == "copy-complete" {
			completed++
		}
	}
	if completed < 1 {
		t.Fatalf("journal records no completed copies across %d entries", len(status.Journal))
	}
	if budget := ctl.Config().Budget; status.PeakCopyRateBps > budget+1e-6 {
		t.Fatalf("peak concurrent migration bandwidth %g exceeds budget %g", status.PeakCopyRateBps, budget)
	}
}
