package vodcluster_test

import (
	"context"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"vodcluster/internal/cluster"
	"vodcluster/internal/core"
	"vodcluster/internal/faults"
	"vodcluster/internal/resilience"
	"vodcluster/internal/serve"
	"vodcluster/internal/sim"
	"vodcluster/internal/workload"
)

// chaosScenario builds the failure-drill cluster: 8 videos at 2 replicas on
// 4 servers (each server holds 4), 10 stream slots per server, a backbone
// for repair traffic, and storage headroom for re-replicated copies.
func chaosScenario(t *testing.T) (*core.Problem, *core.Layout) {
	t.Helper()
	catalog := make(core.Catalog, 8)
	for v := range catalog {
		catalog[v] = core.Video{ID: v, Popularity: 0.125, BitRate: 4 * core.Mbps, Duration: 90 * core.Minute}
	}
	p := &core.Problem{
		Catalog:            catalog,
		NumServers:         4,
		StoragePerServer:   8 * catalog[0].SizeBytes(),
		BandwidthPerServer: 40 * core.Mbps,
		BackboneBandwidth:  100 * core.Mbps,
		ArrivalRate:        400.0 / (90 * core.Minute),
		PeakPeriod:         90 * core.Minute,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	layout := core.NewLayout(len(catalog))
	for v := range catalog {
		layout.Replicas[v] = 2
		for _, s := range []int{v % p.N(), (v + 1) % p.N()} {
			if err := layout.Place(v, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	return p, layout
}

// TestChaosFailureDrill is the end-to-end failure drill the chaos-smoke
// target runs under the race detector: a scripted mid-trace crash of a
// backend holding a quarter of the catalog, replayed over HTTP against a
// self-healing daemon (failover + automatic re-replication), with recovery
// late in the trace. It asserts the full robustness contract:
//
//   - every request settles exactly once, crash or no crash;
//   - the live rejection rate — overall and over the post-failure window —
//     matches sim.Run with the same scripted failures (Config.FailAt +
//     Resilience) within 2 percentage points;
//   - the repairer restores every video to min(2, placed) live replicas
//     without ever exceeding its copy-bandwidth budget;
//   - after the cluster quiesces, no bandwidth is leaked anywhere: every
//     per-server gauge, the backbone gauge, and the session registry read
//     zero.
func TestChaosFailureDrill(t *testing.T) {
	p, layout := chaosScenario(t)
	const (
		compress = 2700.0
		failAt   = 1800.0
		healAt   = 4200.0
	)
	copyRate := 10 * core.Mbps
	budget := 4 * copyRate

	gen, err := workload.NewGenerator(workload.Poisson{Lambda: p.ArrivalRate}, p.M(), 0.75)
	if err != nil {
		t.Fatal(err)
	}
	tr := gen.Generate(p.PeakPeriod, 42)
	if len(tr.Requests) < 300 {
		t.Fatalf("trace has only %d requests", len(tr.Requests))
	}

	sched := &faults.Schedule{Events: []faults.Event{
		{At: failAt, Action: faults.ActionFail, Backend: 1},
		{At: healAt, Action: faults.ActionRecover, Backend: 1},
	}}
	if err := sched.Validate(p.N()); err != nil {
		t.Fatal(err)
	}

	srv, err := serve.New(p, layout, serve.Config{Policy: "least-loaded", Compress: compress})
	if err != nil {
		t.Fatal(err)
	}
	srv.AttachInjector(faults.NewInjector())
	repairer, err := serve.NewRepairer(srv, serve.RepairConfig{CopyRate: copyRate, Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	repairer.Start()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer srv.Shutdown()

	client := serve.NewClient(hs.URL)
	ctx := context.Background()
	schedErr := make(chan error, 1)
	go func() {
		schedErr <- sched.Run(ctx, compress, func(e faults.Event) error {
			return client.Fault(ctx, e)
		})
	}()
	rep, err := client.Replay(ctx, tr, compress)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-schedErr; err != nil {
		t.Fatal(err)
	}
	if rep.Errors > 0 {
		t.Fatalf("%d transport errors during replay; first: %v", rep.Errors, rep.FirstError)
	}
	if rep.Requests != len(tr.Requests) {
		t.Fatalf("replay settled %d of %d requests — a request settled zero or multiple times", rep.Requests, len(tr.Requests))
	}

	// The same trace and scripted failures through the simulator, with the
	// resilience mechanisms the live daemon runs: always-on failover and the
	// repairer at the live config's rate.
	pol := resilience.Policy{Failover: true, Repair: true, RepairRate: copyRate}
	simCfg := sim.Config{
		Problem:      p,
		Layout:       layout,
		NewScheduler: func() cluster.Scheduler { return cluster.LeastLoaded{} },
		Trace:        tr,
		Duration:     tr.Meta.Duration,
		Seed:         42,
		FailAt:       sched.FailAt(),
		Resilience:   &pol,
	}
	simRes, err := sim.Run(simCfg)
	if err != nil {
		t.Fatal(err)
	}
	livePct := 100 * rep.RejectionRate()
	simPct := 100 * simRes.RejectionRate
	if delta := math.Abs(livePct - simPct); delta > 2 {
		t.Fatalf("live rejection %.2f%% vs simulated %.2f%%: |Δ| = %.2f points exceeds 2", livePct, simPct, delta)
	}

	// Post-failure window: only decisions dispatched after the crash, against
	// a simulator run warmed up to the same boundary.
	pfCfg := simCfg
	pfCfg.Warmup = failAt
	pfRes, err := sim.Run(pfCfg)
	if err != nil {
		t.Fatal(err)
	}
	liveN, liveRej := rep.Since(failAt)
	if liveN == 0 {
		t.Fatal("no live decisions dispatched after the crash")
	}
	livePct = 100 * float64(liveRej) / float64(liveN)
	simPct = 100 * pfRes.RejectionRate
	if delta := math.Abs(livePct - simPct); delta > 2 {
		t.Fatalf("post-failure live rejection %.2f%% vs simulated %.2f%%: |Δ| = %.2f points exceeds 2", livePct, simPct, delta)
	}
	t.Logf("post-failure: live %.2f%% vs sim %.2f%% over %d live decisions", livePct, simPct, liveN)

	// Self-healing: the crash left 4 videos at 1 live replica; the repairer
	// must have restored them, within its bandwidth budget.
	if got := repairer.Completed(); got < 1 {
		t.Fatalf("repairer completed %d copies, want at least 1 (started %d, aborted %d, skipped %d)",
			got, repairer.Started(), repairer.Aborted(), repairer.Skipped())
	}
	if peak := repairer.PeakCopyRate(); peak > budget+1e-6 {
		t.Fatalf("peak concurrent repair bandwidth %g exceeds budget %g", peak, budget)
	}
	c := srv.Cluster()
	for v := 0; v < c.Videos(); v++ {
		want := min(2, len(c.Holders(v)))
		if got := c.LiveReplicas(v); got < want {
			t.Fatalf("video %d has %d live replicas after the drill, want at least %d", v, got, want)
		}
	}

	// Quiesce and audit the accounting: drain out the remaining sessions,
	// wait for in-flight repair copies, and require every gauge at zero —
	// the single-settlement invariant made observable.
	dctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for repairer.Inflight() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := repairer.Inflight(); n != 0 {
		t.Fatalf("%d repair copies still in flight after quiesce", n)
	}
	if n := srv.Active(); n != 0 {
		t.Fatalf("%d sessions still registered after drain", n)
	}
	for s := 0; s < c.Servers(); s++ {
		if used := c.Used(s); used != 0 {
			t.Fatalf("server %d leaks %d bit/s after quiesce", s, used)
		}
		if active := c.Active(s); active != 0 {
			t.Fatalf("server %d leaks %d active-stream counts after quiesce", s, active)
		}
	}
	if used := c.BackboneUsed(); used != 0 {
		t.Fatalf("backbone leaks %d bit/s after quiesce", used)
	}
}
