// Quickstart: the end-to-end pipeline in one page.
//
// Build the paper's cluster, compute an optimal replication with the bounded
// Adams divisor algorithm, place it with smallest-load-first, then simulate a
// 90-minute peak period of Poisson arrivals and print what happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vodcluster"
	"vodcluster/internal/core"
	"vodcluster/internal/place"
	"vodcluster/internal/replicate"
	"vodcluster/internal/sim"
)

func main() {
	// A cluster of 8 servers, each with 1.8 Gb/s outgoing bandwidth and
	// room for 15 video replicas, serving 100 videos of 90 minutes encoded
	// at 4 Mb/s whose popularity follows a Zipf-like law with skew 0.75.
	catalog, err := core.NewCatalog(100, 0.75, 4*core.Mbps, 90*core.Minute)
	if err != nil {
		log.Fatal(err)
	}
	problem := &core.Problem{
		Catalog:            catalog,
		NumServers:         8,
		StoragePerServer:   15 * catalog[0].SizeBytes(),
		BandwidthPerServer: 1.8 * core.Gbps,
		ArrivalRate:        40.0 / core.Minute, // peak: 40 requests/minute
		PeakPeriod:         90 * core.Minute,
	}
	if err := problem.Validate(); err != nil {
		log.Fatal(err)
	}

	// Replication (how many copies per video) + placement (which servers).
	layout, err := vodcluster.BuildLayout(problem, replicate.BoundedAdams{}, place.SmallestLoadFirst{}, 1.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("layout: %d replicas for %d videos (degree %.2f)\n",
		layout.TotalReplicas(), problem.M(), layout.ReplicationDegree())
	fmt.Printf("hottest video has %d replicas; coldest has %d\n",
		layout.Replicas[0], layout.Replicas[problem.M()-1])
	loads := layout.ServerLoads(problem)
	fmt.Printf("expected load imbalance: Eq.2 L=%.4f (Theorem 4.2 bound %.2f requests)\n\n",
		core.ImbalanceMax(loads), place.TheoremBound(problem, layout.Replicas))

	// Simulate one peak period under static round-robin scheduling.
	result, err := sim.Run(sim.Config{Problem: problem, Layout: layout, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("one simulated peak period:", result)

	// Average over 20 independent runs for a stable estimate.
	agg, _, err := sim.RunMany(sim.Config{Problem: problem, Layout: layout, Seed: 7}, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("20-run aggregate:          ", agg)
}
