// Hierarchical-sites: the media mapping problem on a geographically
// distributed server tree — the predecessor system (paper ref. [28]) whose
// simulated annealing the paper's §4.3 reuses, and the deployment setting
// §1 mentions for distributed-storage clusters.
//
// A root archive holds the full catalog; two regional servers and four edge
// sites hold caches. Requests arrive at the edges and are served by the
// nearest ancestor holding the title, so the mapping decides how much
// traffic stays local versus crossing the tree. The example compares the
// root-only, greedy, and annealed mappings, with and without regional taste.
//
//	go run ./examples/hierarchical-sites
package main

import (
	"fmt"
	"log"

	"vodcluster/internal/anneal"
	"vodcluster/internal/core"
	"vodcluster/internal/hierarchy"
	"vodcluster/internal/report"
)

func main() {
	catalog, err := core.NewCatalog(60, 0.8, 4*core.Mbps, 90*core.Minute)
	if err != nil {
		log.Fatal(err)
	}
	size := catalog[0].SizeBytes()
	topo, err := hierarchy.NewUniformTree(2, []hierarchy.Node{
		{StorageBytes: 70 * size, StreamBW: 20 * core.Gbps},                          // root archive
		{StorageBytes: 20 * size, StreamBW: 4 * core.Gbps, UplinkBW: 4 * core.Gbps},  // regions
		{StorageBytes: 8 * size, StreamBW: 2 * core.Gbps, UplinkBW: 1.5 * core.Gbps}, // edge sites
	})
	if err != nil {
		log.Fatal(err)
	}
	leaves := topo.Leaves()
	rates := make([]float64, len(leaves))
	for i := range rates {
		rates[i] = 4.0 / core.Minute
	}

	// Regional taste: every edge site rotates the global ranking, so its
	// hot set differs from its siblings'.
	pops := make([][]float64, len(leaves))
	for li := range pops {
		pops[li] = make([]float64, len(catalog))
		for v := range catalog {
			pops[li][v] = catalog[(v+li*15)%len(catalog)].Popularity
		}
	}
	problem := &hierarchy.Problem{Topo: topo, Catalog: catalog, LeafRate: rates, LeafPopularity: pops}
	if err := problem.Validate(); err != nil {
		log.Fatal(err)
	}

	opts := anneal.DefaultOptions()
	opts.InitialTemp = 0.5
	opts.Seed = 3
	best, annealed, err := hierarchy.Optimize(problem, opts, 4)
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable("mapping", "local hit %", "mean hops", "max link util")
	for _, row := range []struct {
		name string
		e    hierarchy.Eval
	}{
		{"root only", problem.Evaluate(hierarchy.NewMapping(problem))},
		{"greedy global top-8", problem.Evaluate(hierarchy.GreedyMapping(problem))},
		{"simulated annealing", annealed},
	} {
		t.AddRowf(row.name, 100*row.e.LocalHitRatio, row.e.MeanHops, row.e.MaxLinkUtil)
	}
	fmt.Println(t)

	// Show how the annealed mapping specialized one edge site.
	leaf := leaves[1]
	fmt.Printf("edge site %d cache (its own top titles, not the global ones):", leaf)
	for v := range catalog {
		if best.Placed[leaf][v] {
			fmt.Printf(" v%d", v)
		}
	}
	fmt.Println()
	fmt.Println("greedy gives every site the same global hits; annealing matches each")
	fmt.Println("site's cache to its regional ranking and cuts the backbone traffic.")
}
