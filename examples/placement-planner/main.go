// Placement-planner: the paper's three worked examples (Figures 1–3),
// reproduced exactly.
//
//   - Figure 1: bounded Adams divisor replication of 5 videos on 3 servers
//     with 3 replicas of storage each — watch the replica vector evolve as
//     the budget grows, always duplicating the video whose replicas carry
//     the greatest communication weight.
//
//   - Figure 2: Zipf-interval replication of 7 videos on 4 servers — the
//     popularity range is split into 4 Zipf-skewed intervals and each
//     interval maps to a replica count.
//
//   - Figure 3: smallest-load-first placement on 4 servers — the heaviest
//     replica goes to the least-loaded feasible server, round by round.
//
//     go run ./examples/placement-planner
package main

import (
	"fmt"
	"log"

	"vodcluster/internal/core"
	"vodcluster/internal/place"
	"vodcluster/internal/replicate"
	"vodcluster/internal/report"
	"vodcluster/internal/zipf"
)

func main() {
	figure1()
	figure2()
	figure3()
}

// problem builds a small fixed-rate instance with the given Zipf skew.
func problem(m, n int, theta float64, replicasPerServer int) *core.Problem {
	catalog, err := core.NewCatalog(m, theta, 4*core.Mbps, 90*core.Minute)
	if err != nil {
		log.Fatal(err)
	}
	p := &core.Problem{
		Catalog:            catalog,
		NumServers:         n,
		StoragePerServer:   float64(replicasPerServer) * catalog[0].SizeBytes(),
		BandwidthPerServer: core.Gbps,
		ArrivalRate:        10.0 / core.Minute,
		PeakPeriod:         90 * core.Minute,
	}
	if err := p.Validate(); err != nil {
		log.Fatal(err)
	}
	return p
}

func figure1() {
	fmt.Println("=== Figure 1: bounded Adams divisor replication (5 videos, 3 servers) ===")
	p := problem(5, 3, 0.75, 3) // cluster capacity: 9 replicas
	t := report.NewTable("budget", "r1", "r2", "r3", "r4", "r5", "max weight")
	for budget := 5; budget <= 9; budget++ {
		r, err := replicate.BoundedAdams{}.Replicate(p, budget)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRowf(budget, r[0], r[1], r[2], r[3], r[4], replicate.MaxWeight(p, r))
	}
	fmt.Println(t)
	fmt.Println("each extra replica goes to the video whose replicas currently carry")
	fmt.Println("the greatest communication weight, capped at one replica per server.")
	fmt.Println()
}

func figure2() {
	fmt.Println("=== Figure 2: Zipf-interval replication (7 videos, 4 servers) ===")
	p := problem(7, 4, 0.6, 4) // capacity: 16 replicas
	budget := 13               // the figure's scenario: 13 replicas
	zr := replicate.ZipfInterval{}
	u, err := zr.Param(p, budget)
	if err != nil {
		log.Fatal(err)
	}
	r, err := zr.Replicate(p, budget)
	if err != nil {
		log.Fatal(err)
	}
	top := p.Catalog[0].Popularity + p.Catalog[p.M()-1].Popularity
	bounds := zipf.Partition(top, p.N(), u)
	fmt.Printf("binary-searched interval parameter u = %.4f\n", u)
	fmt.Printf("interval boundaries z (top %.4f → 0):", top)
	for _, z := range bounds {
		fmt.Printf(" %.4f", z)
	}
	fmt.Println()
	t := report.NewTable("video", "popularity", "interval", "replicas")
	for v := 0; v < p.M(); v++ {
		interval := 1
		for j := 1; j < p.N(); j++ {
			if p.Catalog[v].Popularity <= bounds[j] {
				interval = j + 1
			}
		}
		t.AddRowf(v+1, p.Catalog[v].Popularity, interval, r[v])
	}
	fmt.Println(t)
	total := 0
	for _, ri := range r {
		total += ri
	}
	fmt.Printf("total replicas: %d of budget %d\n\n", total, budget)
}

func figure3() {
	fmt.Println("=== Figure 3: smallest-load-first placement (8 videos, 4 servers) ===")
	p := problem(8, 4, 0.75, 4)
	r, err := replicate.BoundedAdams{}.Replicate(p, 14)
	if err != nil {
		log.Fatal(err)
	}
	layout, err := place.SmallestLoadFirst{}.Place(p, r)
	if err != nil {
		log.Fatal(err)
	}
	w := layout.Weights(p)
	t := report.NewTable("video", "replicas", "weight", "servers")
	for v := 0; v < p.M(); v++ {
		t.AddRowf(v+1, layout.Replicas[v], w[v], fmt.Sprint(layout.Servers[v]))
	}
	fmt.Println(t)
	loads := layout.ServerLoads(p)
	fmt.Printf("server loads: %v\n", loads)
	fmt.Printf("imbalance: Eq.2 L=%.4f, Eq.3 L=%.4f (Theorem 4.2 bound: %.4f)\n",
		core.ImbalanceMax(loads), core.ImbalanceStd(loads), place.TheoremBound(p, r))
}
