// Dynamic-replication: runtime adaptation to a popularity shift.
//
// The layout is planned offline for the peak-period popularity ranking —
// the paper's conservative model. Halfway through the simulated peak the
// ranking rotates by M/2: yesterday's hits go cold and the back catalog
// heats up. A static layout then rejects heavily, because the new hot
// videos have too few replicas. The dynamic replication manager (paper
// §4.1.2: "the replication algorithms can be applied for dynamic replication
// during run-time") watches demand, recomputes the Zipf-interval target on
// the empirical ranking, and migrates replicas over the cluster backbone.
//
//	go run ./examples/dynamic-replication
package main

import (
	"fmt"
	"log"

	"vodcluster"
	"vodcluster/internal/config"
	"vodcluster/internal/dynrep"
	"vodcluster/internal/report"
	"vodcluster/internal/sim"
	"vodcluster/internal/workload"
)

func main() {
	s := config.Paper()
	s.Degree = 1.2
	s.BackboneGbps = 2
	problem, layout, _, err := vodcluster.Pipeline(s)
	if err != nil {
		log.Fatal(err)
	}

	gen, err := workload.NewGenerator(workload.NewPoissonPerMinute(40), problem.M(), s.Theta)
	if err != nil {
		log.Fatal(err)
	}

	const runs = 10
	t := report.NewTable("policy", "rejected %", "migrations/run", "evictions/run")
	for _, dynamic := range []bool{false, true} {
		var rej, mig, evi float64
		for run := 0; run < runs; run++ {
			trace := gen.Generate(problem.PeakPeriod, 100+int64(run))
			shifted, err := trace.Remap(
				workload.RotationMapping(problem.M(), problem.M()/2),
				problem.PeakPeriod/2)
			if err != nil {
				log.Fatal(err)
			}
			cfg := sim.Config{Problem: problem, Layout: layout, Trace: shifted, Seed: int64(run)}
			var mgr *dynrep.Manager
			if dynamic {
				cfg.NewController = func() sim.Controller {
					m, err := dynrep.New(problem, dynrep.Options{
						IntervalSec: 300, // adjust every 5 simulated minutes
						MaxPerTick:  4,
					})
					if err != nil {
						log.Fatal(err)
					}
					mgr = m
					return m
				}
			}
			res, err := sim.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			rej += res.RejectionRate
			if mgr != nil {
				mig += float64(mgr.Migrations())
				evi += float64(mgr.Evictions())
			}
		}
		name := "static layout"
		if dynamic {
			name = "dynamic replication"
		}
		t.AddRowf(name, 100*rej/runs, mig/runs, evi/runs)
	}
	fmt.Println(t)
	fmt.Println("the static layout pays for its stale ranking after the shift; the manager")
	fmt.Println("migrates a few dozen replicas over the backbone and recovers most of it.")
}
