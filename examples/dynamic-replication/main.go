// Dynamic-replication: runtime adaptation to a popularity shift.
//
// The layout is planned offline for the peak-period popularity ranking —
// the paper's conservative model. Halfway through the simulated peak the
// ranking rotates by M/2: yesterday's hits go cold and the back catalog
// heats up. A static layout then rejects heavily, because the new hot
// videos have too few replicas. The dynamic replication manager (paper
// §4.1.2: "the replication algorithms can be applied for dynamic replication
// during run-time") watches demand, recomputes the Zipf-interval target on
// the empirical ranking, and migrates replicas over the cluster backbone.
//
// Both policies replay the same traces, evaluated in parallel on the
// experiment harness (internal/exp) with one trace per swept run index.
//
//	go run ./examples/dynamic-replication
package main

import (
	"fmt"
	"log"

	"vodcluster"
	"vodcluster/internal/config"
	"vodcluster/internal/dynrep"
	"vodcluster/internal/exp"
	"vodcluster/internal/report"
	"vodcluster/internal/sim"
	"vodcluster/internal/workload"
)

func main() {
	s := config.Paper()
	s.Degree = 1.2
	s.BackboneGbps = 2
	problem, layout, _, err := vodcluster.Pipeline(s)
	if err != nil {
		log.Fatal(err)
	}

	gen, err := workload.NewGenerator(workload.NewPoissonPerMinute(40), problem.M(), s.Theta)
	if err != nil {
		log.Fatal(err)
	}
	// Validated once, before any run starts; each run gets a fresh Manager.
	newManager, err := dynrep.NewFactory(problem, dynrep.Options{
		IntervalSec: 300, // adjust every 5 simulated minutes
		MaxPerTick:  4,
	})
	if err != nil {
		log.Fatal(err)
	}

	const runs = 10
	runIdx := make([]float64, runs)
	for i := range runIdx {
		runIdx[i] = float64(i)
	}
	mgrs := make([]*dynrep.Manager, runs)
	series := make([]exp.Series, 0, 2)
	for _, dynamic := range []bool{false, true} {
		dynamic := dynamic
		name := "static layout"
		if dynamic {
			name = "dynamic replication"
		}
		series = append(series, exp.Series{Name: name, Config: func(x float64) (sim.Config, error) {
			run := int(x)
			trace := gen.Generate(problem.PeakPeriod, 100+int64(run))
			shifted, err := trace.Remap(
				workload.RotationMapping(problem.M(), problem.M()/2),
				problem.PeakPeriod/2)
			if err != nil {
				return sim.Config{}, err
			}
			cfg := sim.Config{Problem: problem, Layout: layout, Trace: shifted}
			if dynamic {
				cfg.NewController = func() sim.Controller {
					m := newManager()
					mgrs[run] = m
					return m
				}
			}
			return cfg, nil
		}})
	}
	sweep := &exp.Sweep{Xs: runIdx, Series: series, Runs: 1}
	grid, err := sweep.Run()
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable("policy", "rejected %", "migrations/run", "evictions/run")
	for si, ser := range series {
		var rej, mig, evi float64
		for xi := range runIdx {
			rej += grid[si][xi].Results[0].RejectionRate
		}
		if ser.Name == "dynamic replication" {
			for _, m := range mgrs {
				mig += float64(m.Migrations())
				evi += float64(m.Evictions())
			}
		}
		t.AddRowf(ser.Name, 100*rej/runs, mig/runs, evi/runs)
	}
	fmt.Println(t)
	fmt.Println("the static layout pays for its stale ranking after the shift; the manager")
	fmt.Println("migrates a few dozen replicas over the backbone and recovers most of it.")
}
