// Rejection-sweep: a Figure-4/5 style experiment through the public API.
//
// For each replication/placement combination, sweep the arrival rate from
// light load to beyond the cluster's saturation point (40 requests/minute on
// the paper's cluster) and chart the rejection rate. The ranking the paper
// reports — Zipf replication + smallest-load-first placement dominating the
// classification + round-robin baseline, with the gap closing as the
// replication degree rises — reproduces here.
//
//	go run ./examples/rejection-sweep
package main

import (
	"fmt"
	"log"
	"os"

	"vodcluster"
	"vodcluster/internal/config"
	"vodcluster/internal/report"
)

func main() {
	lambdas := []float64{16, 24, 32, 36, 40, 44}
	combos := [][2]string{
		{"zipf", "slf"},
		{"zipf", "roundrobin"},
		{"classification", "slf"},
		{"classification", "roundrobin"},
	}

	for _, degree := range []float64{1.2, 2.0} {
		chart := &report.Chart{
			Title:  fmt.Sprintf("Rejection rate (%%) vs arrival rate — degree %.1f, θ=0.75", degree),
			XLabel: "arrival rate (req/min)",
			YLabel: "rejection (%)",
		}
		table := report.NewTable("λ (req/min)", "zipf+slf", "zipf+rr", "class+slf", "class+rr")
		cells := make([][]float64, len(lambdas))
		for i := range cells {
			cells[i] = make([]float64, len(combos))
		}

		for ci, combo := range combos {
			s := config.Paper()
			s.Degree = degree
			s.Replicator, s.Placer = combo[0], combo[1]
			s.Runs = 10
			p, layout, sched, err := vodcluster.Pipeline(s)
			if err != nil {
				log.Fatal(err)
			}
			points, err := vodcluster.SweepArrivalRates(p, layout, sched, lambdas, s.Runs, s.Seed)
			if err != nil {
				log.Fatal(err)
			}
			ys := make([]float64, len(points))
			for i, pt := range points {
				ys[i] = 100 * pt.Agg.RejectionRate.Mean()
				cells[i][ci] = ys[i]
			}
			chart.Add(report.Series{Name: combo[0] + "+" + combo[1], X: lambdas, Y: ys})
		}

		for i, lam := range lambdas {
			table.AddRowf(lam, cells[i][0], cells[i][1], cells[i][2], cells[i][3])
		}
		if err := table.Fprint(os.Stdout); err != nil {
			log.Fatal(err)
		}
		if err := chart.Fprint(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}
