// Rejection-sweep: a Figure-4/5 style experiment through the public API.
//
// For each replication/placement combination, sweep the arrival rate from
// light load to beyond the cluster's saturation point (40 requests/minute on
// the paper's cluster) and chart the rejection rate. The whole grid —
// combinations × rates × replications — evaluates in parallel on the
// experiment harness (internal/exp), with results independent of the worker
// count. The ranking the paper reports — Zipf replication +
// smallest-load-first placement dominating the classification + round-robin
// baseline, with the gap closing as the replication degree rises —
// reproduces here.
//
//	go run ./examples/rejection-sweep
package main

import (
	"fmt"
	"log"

	"vodcluster"
	"vodcluster/internal/config"
	"vodcluster/internal/core"
	"vodcluster/internal/exp"
	"vodcluster/internal/sim"
)

func main() {
	lambdas := []float64{16, 24, 32, 36, 40, 44}
	combos := [][2]string{
		{"zipf", "slf"},
		{"zipf", "roundrobin"},
		{"classification", "slf"},
		{"classification", "roundrobin"},
	}

	for _, degree := range []float64{1.2, 2.0} {
		var seed int64
		const runs = 10
		series := make([]exp.Series, 0, len(combos))
		for _, combo := range combos {
			s := config.Paper()
			s.Degree = degree
			s.Replicator, s.Placer = combo[0], combo[1]
			seed = s.Seed
			p, layout, sched, err := vodcluster.Pipeline(s)
			if err != nil {
				log.Fatal(err)
			}
			series = append(series, exp.Series{
				Name: combo[0] + "+" + combo[1],
				Config: func(lam float64) (sim.Config, error) {
					q := p.Clone()
					q.ArrivalRate = lam / core.Minute
					return sim.Config{Problem: q, Layout: layout, NewScheduler: sched}, nil
				},
			})
		}

		sweep := &exp.Sweep{Xs: lambdas, Series: series, Runs: runs, Seed: seed}
		grid, err := sweep.Run()
		if err != nil {
			log.Fatal(err)
		}

		emit := &exp.Emitter{}
		table := sweep.Table(grid, "λ (req/min)", exp.RejectionPct,
			[]string{"λ (req/min)", "zipf+slf", "zipf+rr", "class+slf", "class+rr"})
		if err := emit.Table(fmt.Sprintf("rejection-deg%.1f", degree), table); err != nil {
			log.Fatal(err)
		}
		chart := sweep.Chart(grid,
			fmt.Sprintf("Rejection rate (%%) vs arrival rate — degree %.1f, θ=0.75", degree),
			"arrival rate (req/min)", "rejection (%)", exp.RejectionPct)
		if err := emit.Chart(chart); err != nil {
			log.Fatal(err)
		}
		emit.Printf("\n")
	}
}
