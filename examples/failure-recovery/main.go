// Failure-recovery: the availability motivation of the paper, made
// quantitative.
//
// Servers fail and repair as independent exponential processes while the
// peak-period workload runs. A video is unreachable while every server
// holding one of its replicas is down, so the replication degree buys
// session survival: the analytic unavailable-request mass Σ p_i·u^{r_i}
// falls geometrically with the degree and the simulated failure rate tracks
// it. The example also sizes the intra-server RAID protection the paper
// mentions (§1): RAID-5 inside each server covers disk failures, replication
// across servers covers server failures.
//
//	go run ./examples/failure-recovery
package main

import (
	"fmt"
	"log"

	"vodcluster"
	"vodcluster/internal/avail"
	"vodcluster/internal/config"
	"vodcluster/internal/core"
	"vodcluster/internal/disk"
	"vodcluster/internal/report"
	"vodcluster/internal/resilience"
	"vodcluster/internal/sim"
)

func main() {
	failures := &avail.FailureModel{MTBF: 8 * core.Hour, MTTR: 45 * core.Minute}
	u := failures.Unavailability()
	fmt.Printf("server failure model: MTBF %.0f h, MTTR %.0f min → unavailability u = %.4f\n\n",
		failures.MTBF/core.Hour, failures.MTTR/core.Minute, u)

	t := report.NewTable("degree", "rejected %", "failure rate % (sim)", "unavailable mass % (analytic)", "dropped/run")
	for _, degree := range []float64{1.0, 1.3, 1.6, 2.0} {
		s := config.Paper()
		s.Degree = degree
		s.LambdaPerMin = 30 // below saturation: failures dominate the outcome
		problem, layout, sched, err := vodcluster.Pipeline(s)
		if err != nil {
			log.Fatal(err)
		}
		agg, _, err := sim.RunMany(sim.Config{
			Problem: problem, Layout: layout, NewScheduler: sched,
			Failures: failures, Seed: 17,
		}, 12)
		if err != nil {
			log.Fatal(err)
		}
		analytic := avail.UnavailableRequestMass(problem, layout, u)
		t.AddRowf(degree, 100*agg.RejectionRate.Mean(), 100*agg.FailureRate.Mean(), 100*analytic, agg.Dropped.Mean())
	}
	fmt.Println(t)
	fmt.Println("rejections (unreachable content + lost capacity) fall with the degree;")
	fmt.Println("mid-playback drops do not — a failing server kills its streams regardless")
	fmt.Println("of how many other replicas exist, which is why the paper pairs replication")
	fmt.Println("with intra-server redundancy.")
	fmt.Println()

	// The resilience layer changes that: failover re-admits interrupted
	// streams onto surviving replicas, rejected arrivals retry with backoff,
	// and repair re-replicates what a failure left under-replicated. Same
	// failure process, recovery off vs on.
	fmt.Println("recovery mechanisms off vs on (failover + retry + repair):")
	rt := report.NewTable("degree", "dropped off", "dropped on", "drop cut %", "fail % off", "fail % on", "failed-over", "reneged")
	for _, degree := range []float64{1.3, 1.6, 2.0} {
		s := config.Paper()
		s.Degree = degree
		s.LambdaPerMin = 30
		problem, layout, sched, err := vodcluster.Pipeline(s)
		if err != nil {
			log.Fatal(err)
		}
		// Leave storage headroom so repair copies have somewhere to land
		// (the pipeline sizes storage to the layout exactly).
		problem = problem.Clone()
		problem.StoragePerServer *= 1.5
		cfg := sim.Config{
			Problem: problem, Layout: layout, NewScheduler: sched,
			Failures: failures, Seed: 17,
		}
		off, _, err := sim.RunMany(cfg, 12)
		if err != nil {
			log.Fatal(err)
		}
		pol := resilience.All()
		pol.Degrade = false // no per-copy rates in this scenario
		cfg.Resilience = &pol
		on, _, err := sim.RunMany(cfg, 12)
		if err != nil {
			log.Fatal(err)
		}
		cut := 0.0
		if off.Dropped.Mean() > 0 {
			cut = 100 * (1 - on.Dropped.Mean()/off.Dropped.Mean())
		}
		rt.AddRowf(degree, off.Dropped.Mean(), on.Dropped.Mean(), cut,
			100*off.FailureRate.Mean(), 100*on.FailureRate.Mean(),
			on.FailedOver.Mean(), on.Reneged.Mean())
	}
	fmt.Println(rt)
	fmt.Println("with replicas to fail over to, a server failure no longer has to kill")
	fmt.Println("its streams — the drop reduction grows with the replication degree.")
	fmt.Println()

	// How many replicas for "three nines" of content availability?
	r, err := avail.DegreeForTarget(u, 1e-3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replicas needed for per-video unavailability ≤ 0.1%%: %d\n\n", r)

	// Inside each server: disk-level protection.
	d := disk.Disk{CapacityBytes: 36 * core.GB, SeekMs: 8, TransferMBps: 40}
	array, err := disk.NewArray(d, 8, disk.RAID5)
	if err != nil {
		log.Fatal(err)
	}
	rebuild, err := array.RebuildSeconds(0.25)
	if err != nil {
		log.Fatal(err)
	}
	mttdl, err := avail.MTTDLRaid5(array.Disks(), 500_000*core.Hour, rebuild)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per-server 8× RAID-5 array: %.0f GB usable, rebuild in %.0f min at 25%% bandwidth,\n",
		array.UsableBytes()/core.GB, rebuild/core.Minute)
	fmt.Printf("mean time to data loss ≈ %.0f years\n", mttdl/core.Hour/24/365)
	healthy := array.StreamCapacity(4*core.Mbps, 2)
	if err := array.Fail(3); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stream capacity: %d healthy → %d degraded (one disk down)\n",
		healthy, array.StreamCapacity(4*core.Mbps, 2))
}
