// Scalable-bitrate: the §4.3 simulated-annealing optimizer on a storage-tight
// cluster where quality (encoding bit rate) and availability (replicas)
// genuinely compete.
//
// Each copy of a video may be encoded at any rate from a discrete set; the
// annealer maximizes Eq. 1 — mean bit rate + α · replication degree −
// β · load imbalance — under storage and outgoing-bandwidth constraints. The
// example prints the quality/availability split the annealer chooses per
// popularity tier, showing the paper's expected pattern: popular videos earn
// both more copies and higher rates.
//
//	go run ./examples/scalable-bitrate
package main

import (
	"fmt"
	"log"

	"vodcluster/internal/anneal"
	"vodcluster/internal/core"
	"vodcluster/internal/report"
)

func main() {
	catalog, err := core.NewCatalog(60, 0.75, 4*core.Mbps, 90*core.Minute)
	if err != nil {
		log.Fatal(err)
	}
	problem := &core.Problem{
		Catalog:            catalog,
		NumServers:         6,
		StoragePerServer:   40 * core.GB, // tight: ~14 copies at 4 Mb/s
		BandwidthPerServer: 1.2 * core.Gbps,
		ArrivalRate:        20.0 / core.Minute,
		PeakPeriod:         90 * core.Minute,
	}
	bp := &anneal.BitRateProblem{
		P:       problem,
		RateSet: []float64{2 * core.Mbps, 4 * core.Mbps, 6 * core.Mbps, 8 * core.Mbps},
	}

	init, err := bp.InitialSolution()
	if err != nil {
		log.Fatal(err)
	}
	before := bp.Evaluate(init)

	opts := anneal.DefaultOptions()
	opts.Seed = 11
	best, after, err := bp.Optimize(opts, 4)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("objective: %.3f → %.3f  (mean rate %.2f → %.2f Mb/s, degree %.2f → %.2f, L %.3f → %.3f)\n\n",
		before.Objective, after.Objective,
		before.MeanRateMbps, after.MeanRateMbps,
		before.Degree, after.Degree,
		before.Imbalance, after.Imbalance)

	// Summarize the annealed layout by popularity tier.
	t := report.NewTable("popularity tier", "videos", "avg copies", "avg rate (Mb/s)", "min..max rate")
	tiers := []struct {
		name     string
		from, to int // rank range, inclusive
	}{
		{"top 10%", 0, 5},
		{"10-30%", 6, 17},
		{"30-60%", 18, 35},
		{"bottom 40%", 36, 59},
	}
	for _, tier := range tiers {
		videos := 0
		copies := 0
		rateSum := 0.0
		minRate, maxRate := -1.0, 0.0
		for v := tier.from; v <= tier.to; v++ {
			videos++
			for s := 0; s < problem.N(); s++ {
				ri := best.RateIdx[v][s]
				if ri < 0 {
					continue
				}
				copies++
				r := bp.RateSet[ri] / core.Mbps
				rateSum += r
				if minRate < 0 || r < minRate {
					minRate = r
				}
				if r > maxRate {
					maxRate = r
				}
			}
		}
		t.AddRowf(tier.name, videos, float64(copies)/float64(videos), rateSum/float64(copies),
			fmt.Sprintf("%.0f..%.0f", minRate, maxRate))
	}
	fmt.Println(t)
}
