package vodcluster_test

// Integration tests asserting the paper's qualitative findings — the curve
// shapes of Figures 4-6 — hold on the reproduced system. Each test uses
// reduced run counts to stay fast while leaving comfortable margins; the
// full-resolution curves live in cmd/vodbench and EXPERIMENTS.md.

import (
	"testing"

	"vodcluster"
	"vodcluster/internal/config"
	"vodcluster/internal/metrics"
	"vodcluster/internal/sim"
)

// rejectionAt measures the mean rejection rate of a combo at one arrival
// rate.
func rejectionAt(t *testing.T, theta, degree float64, repl, plac string, lambdaPerMin float64, runs int) float64 {
	t.Helper()
	s := config.Paper()
	s.Theta = theta
	s.Degree = degree
	s.Replicator, s.Placer = repl, plac
	p, layout, sched, err := vodcluster.Pipeline(s)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := vodcluster.SweepArrivalRates(p, layout, sched, []float64{lambdaPerMin}, runs, 42)
	if err != nil {
		t.Fatal(err)
	}
	return pts[0].Agg.RejectionRate.Mean()
}

// TestFigure4Shape: rejection falls as the replication degree grows, and the
// largest improvement comes from the first step above no replication.
func TestFigure4Shape(t *testing.T) {
	const lambda = 40 // saturation: rejections are visible here
	r10 := rejectionAt(t, 0.75, 1.0, "zipf", "slf", lambda, 10)
	r12 := rejectionAt(t, 0.75, 1.2, "zipf", "slf", lambda, 10)
	r20 := rejectionAt(t, 0.75, 2.0, "zipf", "slf", lambda, 10)
	if r12 >= r10 {
		t.Fatalf("degree 1.2 (%.4f) not better than non-replication (%.4f)", r12, r10)
	}
	if r20 > r10 {
		t.Fatalf("degree 2.0 (%.4f) worse than non-replication (%.4f)", r20, r10)
	}
	// "The rejection rate decreases dramatically from non-replication to
	// low replication degree": the 1.0→1.2 drop dominates 1.2→2.0.
	if (r10 - r12) < (r12 - r20) {
		t.Fatalf("first replication step not dominant: 1.0→1.2 drop %.4f, 1.2→2.0 drop %.4f",
			r10-r12, r12-r20)
	}
}

// TestFigure5Shape: the ranking of the four algorithm combinations at low
// degree — Zipf+SLF best, classification+RR worst, and the Zipf/SLF pair
// closing most of the gap on its own.
func TestFigure5Shape(t *testing.T) {
	const lambda, degree = 40, 1.2
	zipfSLF := rejectionAt(t, 0.75, degree, "zipf", "slf", lambda, 10)
	zipfRR := rejectionAt(t, 0.75, degree, "zipf", "roundrobin", lambda, 10)
	classSLF := rejectionAt(t, 0.75, degree, "classification", "slf", lambda, 10)
	classRR := rejectionAt(t, 0.75, degree, "classification", "roundrobin", lambda, 10)
	if zipfSLF > classRR {
		t.Fatalf("zipf+slf (%.4f) worse than classification+rr (%.4f)", zipfSLF, classRR)
	}
	// "The Zipf replication with the round-robin placement and with the
	// smallest load first placement have nominal differences": within a
	// factor of ~2 of each other, both clearly below classification+RR.
	if zipfRR > classRR {
		t.Fatalf("zipf+rr (%.4f) worse than classification+rr (%.4f)", zipfRR, classRR)
	}
	if classSLF > classRR*1.25+0.005 {
		t.Fatalf("classification+slf (%.4f) much worse than classification+rr (%.4f)", classSLF, classRR)
	}
}

// TestFigure5GapClosesWithDegree: the advantage of Zipf+SLF over
// classification+RR shrinks as the replication degree approaches full.
func TestFigure5GapClosesWithDegree(t *testing.T) {
	const lambda = 40
	gapLow := rejectionAt(t, 0.75, 1.2, "classification", "roundrobin", lambda, 10) -
		rejectionAt(t, 0.75, 1.2, "zipf", "slf", lambda, 10)
	gapHigh := rejectionAt(t, 0.75, 2.0, "classification", "roundrobin", lambda, 10) -
		rejectionAt(t, 0.75, 2.0, "zipf", "slf", lambda, 10)
	if gapHigh > gapLow+0.005 {
		t.Fatalf("gap grew with degree: %.4f → %.4f", gapLow, gapHigh)
	}
}

// TestSkewSensitivity: the benefit of popularity-aware replication shrinks
// as the skew parameter θ falls (Fig. 4a vs 4c).
func TestSkewSensitivity(t *testing.T) {
	const lambda = 40
	gapHighSkew := rejectionAt(t, 0.75, 1.2, "classification", "roundrobin", lambda, 10) -
		rejectionAt(t, 0.75, 1.2, "zipf", "slf", lambda, 10)
	gapLowSkew := rejectionAt(t, 0.25, 1.2, "classification", "roundrobin", lambda, 10) -
		rejectionAt(t, 0.25, 1.2, "zipf", "slf", lambda, 10)
	if gapLowSkew > gapHighSkew+0.01 {
		t.Fatalf("algorithm gap larger at low skew: θ=0.25 gap %.4f vs θ=0.75 gap %.4f",
			gapLowSkew, gapHighSkew)
	}
}

// TestFigure6Shape: the measured load imbalance (capacity-normalized, the
// variant tracing the paper's curve) rises from light load toward a mid-load
// peak, collapses past saturation, and the classification+RR baseline stays
// above Zipf+SLF throughout the loaded region.
func TestFigure6Shape(t *testing.T) {
	imbalanceAt := func(repl, plac string, lambda float64) float64 {
		s := config.Paper()
		s.Degree = 1.2
		s.Replicator, s.Placer = repl, plac
		p, layout, sched, err := vodcluster.Pipeline(s)
		if err != nil {
			t.Fatal(err)
		}
		pts, err := vodcluster.SweepArrivalRates(p, layout, sched, []float64{lambda}, 10, 42)
		if err != nil {
			t.Fatal(err)
		}
		return pts[0].Agg.ImbalanceCapAvg.Mean()
	}
	zipfMid := imbalanceAt("zipf", "slf", 32)
	classMid := imbalanceAt("classification", "roundrobin", 32)
	if zipfMid > classMid {
		t.Fatalf("zipf+slf imbalance (%.4f) above classification+rr (%.4f) at mid load",
			zipfMid, classMid)
	}
	classLight := imbalanceAt("classification", "roundrobin", 8)
	if classMid <= classLight {
		t.Fatalf("imbalance did not rise from light load: %.4f → %.4f", classLight, classMid)
	}
	classOver := imbalanceAt("classification", "roundrobin", 60) // 150% of saturation
	if classOver > classMid {
		t.Fatalf("imbalance did not collapse past saturation: %.4f → %.4f", classMid, classOver)
	}
}

// TestRedirectionHelps: enabling backbone redirection on the paper layout
// strictly reduces the rejection rate at saturation (§6).
func TestRedirectionHelps(t *testing.T) {
	rej := func(backbone float64) float64 {
		s := config.Paper()
		s.Degree = 1.2
		s.BackboneGbps = backbone
		p, layout, sched, err := vodcluster.Pipeline(s)
		if err != nil {
			t.Fatal(err)
		}
		agg, _, err := sim.RunMany(sim.Config{Problem: p, Layout: layout, NewScheduler: sched, Seed: 7}, 10)
		if err != nil {
			t.Fatal(err)
		}
		return agg.RejectionRate.Mean()
	}
	without := rej(0)
	with := rej(2)
	if without <= 0 {
		t.Skip("no rejections at this configuration; nothing to redirect")
	}
	if with >= without {
		t.Fatalf("redirection did not help: %.4f → %.4f", without, with)
	}
}

// TestSchedulerAblation: first-available and least-loaded scheduling dominate
// the paper's static round-robin at saturation.
func TestSchedulerAblation(t *testing.T) {
	s := config.Paper()
	s.Degree = 1.2
	p, layout, _, err := vodcluster.Pipeline(s)
	if err != nil {
		t.Fatal(err)
	}
	rates := map[string]float64{}
	for _, name := range []string{"static-rr", "first-available", "least-loaded"} {
		f, err := vodcluster.SchedulerFactory(name, false)
		if err != nil {
			t.Fatal(err)
		}
		var agg *metrics.Aggregate
		agg, _, err = sim.RunMany(sim.Config{Problem: p, Layout: layout, NewScheduler: f, Seed: 7}, 10)
		if err != nil {
			t.Fatal(err)
		}
		rates[name] = agg.RejectionRate.Mean()
	}
	if rates["first-available"] > rates["static-rr"]+1e-9 {
		t.Fatalf("first-available (%.4f) worse than static-rr (%.4f)",
			rates["first-available"], rates["static-rr"])
	}
	if rates["least-loaded"] > rates["first-available"]+1e-9 {
		t.Fatalf("least-loaded (%.4f) worse than first-available (%.4f)",
			rates["least-loaded"], rates["first-available"])
	}
}
