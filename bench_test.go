package vodcluster_test

// Benchmarks mirroring the paper's evaluation: one benchmark per figure
// (4, 5, 6), plus the §4.3 annealing experiment, the §6 redirection
// experiment, and ablation benches for the layout-construction pipeline.
// Each figure bench simulates one representative data point of the figure
// per iteration and reports the measured headline metric via
// b.ReportMetric, so `go test -bench .` regenerates the numbers next to the
// timing. The full sweeps (all sub-plots, all points, 20 replications) live
// in cmd/vodbench.

import (
	"fmt"
	"testing"

	"vodcluster"
	"vodcluster/internal/anneal"
	"vodcluster/internal/avail"
	"vodcluster/internal/config"
	"vodcluster/internal/core"
	"vodcluster/internal/disk"
	"vodcluster/internal/dynrep"
	"vodcluster/internal/exp"
	"vodcluster/internal/sim"
	"vodcluster/internal/workload"
)

// benchPoint runs one (θ, degree, combo, λ) cell and returns mean rejection
// rate and mean imbalance over `runs` replications.
func benchPoint(b *testing.B, theta, degree float64, repl, plac string, lambdaPerMin float64, runs int) (rej, imb float64) {
	b.Helper()
	s := config.Paper()
	s.Theta = theta
	s.Degree = degree
	s.Replicator, s.Placer = repl, plac
	p, layout, sched, err := vodcluster.Pipeline(s)
	if err != nil {
		b.Fatal(err)
	}
	pts, err := vodcluster.SweepArrivalRates(p, layout, sched, []float64{lambdaPerMin}, runs, 42)
	if err != nil {
		b.Fatal(err)
	}
	return pts[0].Agg.RejectionRate.Mean(), pts[0].Agg.ImbalanceAvg.Mean()
}

// BenchmarkFig4RejectionByDegree regenerates Figure 4's headline cells:
// rejection rate at saturation (λ=40/min) for each replication degree under
// Zipf replication + smallest-load-first placement, θ = 0.75.
func BenchmarkFig4RejectionByDegree(b *testing.B) {
	for _, degree := range []float64{1.0, 1.2, 1.6, 2.0} {
		b.Run(fmt.Sprintf("degree=%.1f", degree), func(b *testing.B) {
			var rej float64
			for i := 0; i < b.N; i++ {
				rej, _ = benchPoint(b, 0.75, degree, "zipf", "slf", 40, 3)
			}
			b.ReportMetric(100*rej, "reject%")
		})
	}
}

// BenchmarkFig4Sweep measures one Figure-4(a)-style sweep end to end on the
// experiment harness — the quick grid (3 degrees × 3 arrival rates × 3
// replications) — sequentially and with parallel workers. The CI bench-smoke
// step runs this once per push, and BENCH_sweep.json records the wall clock
// of the full vodbench figure.
func BenchmarkFig4Sweep(b *testing.B) {
	series := make([]exp.Series, 0, 3)
	for _, degree := range []float64{1.0, 1.4, 2.0} {
		s := config.Paper()
		s.Degree = degree
		p, layout, sched, err := vodcluster.Pipeline(s)
		if err != nil {
			b.Fatal(err)
		}
		series = append(series, exp.Series{
			Name: fmt.Sprintf("deg %.1f", degree),
			Config: func(lam float64) (sim.Config, error) {
				q := p.Clone()
				q.ArrivalRate = lam / core.Minute
				return sim.Config{Problem: q, Layout: layout, NewScheduler: sched}, nil
			},
		})
	}
	for _, workers := range []int{1, 0} {
		name := "workers=max"
		if workers == 1 {
			name = "workers=1"
		}
		b.Run(name, func(b *testing.B) {
			var rej float64
			for i := 0; i < b.N; i++ {
				sweep := &exp.Sweep{
					Xs: []float64{16, 32, 40}, Series: series,
					Runs: 3, Seed: 42, Workers: workers,
				}
				grid, err := sweep.Run()
				if err != nil {
					b.Fatal(err)
				}
				rej = exp.RejectionPct(grid[0][2])
			}
			b.ReportMetric(rej, "reject%")
		})
	}
}

// BenchmarkFig5RejectionByCombo regenerates Figure 5(a): rejection rate at
// saturation for the four algorithm combinations at degree 1.2, θ = 0.75.
func BenchmarkFig5RejectionByCombo(b *testing.B) {
	combos := []struct{ repl, plac string }{
		{"zipf", "slf"},
		{"zipf", "roundrobin"},
		{"classification", "slf"},
		{"classification", "roundrobin"},
	}
	for _, c := range combos {
		b.Run(c.repl+"+"+c.plac, func(b *testing.B) {
			var rej float64
			for i := 0; i < b.N; i++ {
				rej, _ = benchPoint(b, 0.75, 1.2, c.repl, c.plac, 40, 3)
			}
			b.ReportMetric(100*rej, "reject%")
		})
	}
}

// BenchmarkFig6ImbalanceByCombo regenerates Figure 6(a): the measured load
// imbalance degree L at mid load (λ=32/min), degree 1.2, θ = 0.75.
func BenchmarkFig6ImbalanceByCombo(b *testing.B) {
	combos := []struct{ repl, plac string }{
		{"zipf", "slf"},
		{"classification", "roundrobin"},
	}
	for _, c := range combos {
		b.Run(c.repl+"+"+c.plac, func(b *testing.B) {
			var imb float64
			for i := 0; i < b.N; i++ {
				_, imb = benchPoint(b, 0.75, 1.2, c.repl, c.plac, 32, 3)
			}
			b.ReportMetric(100*imb, "L%")
		})
	}
}

// BenchmarkSAScalableBitrate regenerates the §4.3 experiment: simulated
// annealing over the rate set {2,4,6,8} Mb/s on the paper cluster, reporting
// the achieved Eq. 1 objective.
func BenchmarkSAScalableBitrate(b *testing.B) {
	s := config.Paper()
	s.StorageGB = 50
	p, err := s.Problem()
	if err != nil {
		b.Fatal(err)
	}
	bp := &anneal.BitRateProblem{
		P:       p,
		RateSet: []float64{2 * core.Mbps, 4 * core.Mbps, 6 * core.Mbps, 8 * core.Mbps},
	}
	opts := anneal.DefaultOptions()
	opts.MaxSteps = 30_000
	var obj float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(i)
		_, e, err := bp.Optimize(opts, 1)
		if err != nil {
			b.Fatal(err)
		}
		obj = e.Objective
	}
	b.ReportMetric(obj, "objective")
}

// BenchmarkRedirection regenerates the §6 experiment: rejection at
// saturation with and without a 2 Gb/s backbone.
func BenchmarkRedirection(b *testing.B) {
	for _, backbone := range []float64{0, 2} {
		b.Run(fmt.Sprintf("backbone=%gGbps", backbone), func(b *testing.B) {
			s := config.Paper()
			s.Degree = 1.2
			s.BackboneGbps = backbone
			p, layout, sched, err := vodcluster.Pipeline(s)
			if err != nil {
				b.Fatal(err)
			}
			var rej float64
			for i := 0; i < b.N; i++ {
				agg, _, err := sim.RunMany(sim.Config{Problem: p, Layout: layout, NewScheduler: sched, Seed: int64(i)}, 3)
				if err != nil {
					b.Fatal(err)
				}
				rej = agg.RejectionRate.Mean()
			}
			b.ReportMetric(100*rej, "reject%")
		})
	}
}

// BenchmarkBuildLayout is the ablation bench for layout construction cost:
// every replicator × the two paper placers on the paper instance.
func BenchmarkBuildLayout(b *testing.B) {
	s := config.Paper()
	p, err := s.Problem()
	if err != nil {
		b.Fatal(err)
	}
	for _, rn := range []string{"adams", "zipf", "classification", "uniform"} {
		for _, pn := range []string{"slf", "roundrobin"} {
			b.Run(rn+"+"+pn, func(b *testing.B) {
				r, err := vodcluster.ReplicatorByName(rn)
				if err != nil {
					b.Fatal(err)
				}
				pl, err := vodcluster.PlacerByName(pn)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := vodcluster.BuildLayout(p, r, pl, 1.2); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSimulatedPeakPeriod measures the raw simulator throughput on the
// paper instance at saturation: one 90-minute peak period per iteration
// (~3600 arrivals, ~7200 events).
func BenchmarkSimulatedPeakPeriod(b *testing.B) {
	s := config.Paper()
	s.Degree = 1.2
	p, layout, sched, err := vodcluster.Pipeline(s)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Config{Problem: p, Layout: layout, NewScheduler: sched, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAvailability regenerates the availability experiment point:
// session failure rate at degree 1.2 under MTBF 10 h / MTTR 30 min failures.
func BenchmarkAvailability(b *testing.B) {
	s := config.Paper()
	s.Degree = 1.2
	s.LambdaPerMin = 32
	p, layout, sched, err := vodcluster.Pipeline(s)
	if err != nil {
		b.Fatal(err)
	}
	f := &avail.FailureModel{MTBF: 10 * core.Hour, MTTR: 30 * core.Minute}
	var rate float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg, _, err := sim.RunMany(sim.Config{
			Problem: p, Layout: layout, NewScheduler: sched,
			Failures: f, Seed: int64(i),
		}, 3)
		if err != nil {
			b.Fatal(err)
		}
		rate = agg.FailureRate.Mean()
	}
	b.ReportMetric(100*rate, "failure%")
}

// BenchmarkDynamicReplication regenerates the popularity-shift experiment
// point: rejection with the runtime manager adapting mid-period.
func BenchmarkDynamicReplication(b *testing.B) {
	s := config.Paper()
	s.Degree = 1.2
	s.BackboneGbps = 2
	p, layout, _, err := vodcluster.Pipeline(s)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.NewGenerator(workload.NewPoissonPerMinute(40), p.M(), s.Theta)
	if err != nil {
		b.Fatal(err)
	}
	newManager, err := dynrep.NewFactory(p, dynrep.Options{IntervalSec: 300, MaxPerTick: 4})
	if err != nil {
		b.Fatal(err)
	}
	var rej float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := gen.Generate(p.PeakPeriod, int64(i))
		shifted, err := tr.Remap(workload.RotationMapping(p.M(), p.M()/2), p.PeakPeriod/2)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(sim.Config{
			Problem: p, Layout: layout, Trace: shifted, Seed: int64(i),
			NewController: func() sim.Controller { return newManager() },
		})
		if err != nil {
			b.Fatal(err)
		}
		rej = res.RejectionRate
	}
	b.ReportMetric(100*rej, "reject%")
}

// BenchmarkHeteroPlacement regenerates the heterogeneous-cluster experiment
// point: rejection at saturation for each placement policy on crossed tiers.
func BenchmarkHeteroPlacement(b *testing.B) {
	for _, placer := range []string{"slf", "wslf", "bsr"} {
		b.Run(placer, func(b *testing.B) {
			s := config.Paper()
			s.Servers = 8
			s.ServerBandwidthGbps = []float64{2.4, 2.4, 2.4, 2.4, 1.2, 1.2, 1.2, 1.2}
			s.ServerStorageGB = []float64{27, 27, 27, 27, 54, 54, 54, 54}
			s.Degree = 1.2
			s.Placer = placer
			p, layout, sched, err := vodcluster.Pipeline(s)
			if err != nil {
				b.Fatal(err)
			}
			var rej float64
			for i := 0; i < b.N; i++ {
				agg, _, err := sim.RunMany(sim.Config{
					Problem: p, Layout: layout, NewScheduler: sched, Seed: int64(i),
				}, 3)
				if err != nil {
					b.Fatal(err)
				}
				rej = agg.RejectionRate.Mean()
			}
			b.ReportMetric(100*rej, "reject%")
		})
	}
}

// BenchmarkDiskStreamLimit regenerates the disk experiment point: rejection
// at saturation when a degraded 8-disk RAID-5 caps each server's streams.
func BenchmarkDiskStreamLimit(b *testing.B) {
	d := disk.Disk{CapacityBytes: 36 * core.GB, SeekMs: 8, TransferMBps: 40}
	a, err := disk.NewArray(d, 8, disk.RAID5)
	if err != nil {
		b.Fatal(err)
	}
	if err := a.Fail(0); err != nil {
		b.Fatal(err)
	}
	limit := a.StreamCapacity(4*core.Mbps, 2)
	s := config.Paper()
	s.Degree = 1.2
	p, layout, sched, err := vodcluster.Pipeline(s)
	if err != nil {
		b.Fatal(err)
	}
	var rej float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Problem: p, Layout: layout, NewScheduler: sched,
			StreamLimit: limit, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		rej = res.RejectionRate
	}
	b.ReportMetric(100*rej, "reject%")
}
