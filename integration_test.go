package vodcluster_test

// Cross-cutting integration tests: combinations of subsystems that the
// per-package suites exercise only in isolation — failures + redirection,
// dynamic replication + failures, heterogeneous scenarios through the full
// pipeline, and analytic-vs-simulated consistency through the facade.

import (
	"math"
	"testing"

	"vodcluster"
	"vodcluster/internal/analytic"
	"vodcluster/internal/avail"
	"vodcluster/internal/config"
	"vodcluster/internal/core"
	"vodcluster/internal/dynrep"
	"vodcluster/internal/place"
	"vodcluster/internal/sim"
	"vodcluster/internal/workload"
)

// TestRedirectionUnderFailures: backbone redirection must keep helping when
// servers fail — redirected service routes around saturated links, and the
// combination must never do worse than the plain policy.
func TestRedirectionUnderFailures(t *testing.T) {
	f := &avail.FailureModel{MTBF: 8 * core.Hour, MTTR: 30 * core.Minute}
	rate := func(backbone float64) float64 {
		s := config.Paper()
		s.Degree = 1.2
		s.LambdaPerMin = 36
		s.BackboneGbps = backbone
		p, layout, sched, err := vodcluster.Pipeline(s)
		if err != nil {
			t.Fatal(err)
		}
		agg, _, err := sim.RunMany(sim.Config{
			Problem: p, Layout: layout, NewScheduler: sched,
			Failures: f, Seed: 99,
		}, 10)
		if err != nil {
			t.Fatal(err)
		}
		return agg.RejectionRate.Mean()
	}
	plain := rate(0)
	redirected := rate(2)
	if plain <= 0 {
		t.Skip("no rejections to redirect at this configuration")
	}
	if redirected > plain+1e-9 {
		t.Fatalf("redirection under failures hurt: %.4f vs %.4f", redirected, plain)
	}
}

// TestDynamicReplicationUnderFailures: the runtime manager must coexist with
// failure injection — migrations to live servers, no lost last copies, no
// panics — and still reduce rejections after a popularity shift.
func TestDynamicReplicationUnderFailures(t *testing.T) {
	s := config.Paper()
	s.Degree = 1.2
	s.BackboneGbps = 2
	p, layout, _, err := vodcluster.Pipeline(s)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(workload.NewPoissonPerMinute(40), p.M(), s.Theta)
	if err != nil {
		t.Fatal(err)
	}
	f := &avail.FailureModel{MTBF: 6 * core.Hour, MTTR: 20 * core.Minute}

	var static, dynamic float64
	runs := 8
	for i := 0; i < runs; i++ {
		tr := gen.Generate(p.PeakPeriod, int64(300+i))
		shifted, err := tr.Remap(workload.RotationMapping(p.M(), p.M()/2), p.PeakPeriod/2)
		if err != nil {
			t.Fatal(err)
		}
		sres, err := sim.Run(sim.Config{Problem: p, Layout: layout, Trace: shifted, Failures: f, Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		static += sres.FailureRate
		dres, err := sim.Run(sim.Config{
			Problem: p, Layout: layout, Trace: shifted, Failures: f, Seed: int64(i),
			NewController: func() sim.Controller {
				m, err := dynrep.New(p, dynrep.Options{IntervalSec: 300, MaxPerTick: 4})
				if err != nil {
					t.Fatal(err)
				}
				return m
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		dynamic += dres.FailureRate
	}
	if dynamic > static+0.01*float64(runs) {
		t.Fatalf("dynamic replication under failures hurt: %.4f vs %.4f",
			dynamic/float64(runs), static/float64(runs))
	}
}

// TestHeterogeneousScenarioEndToEnd: the JSON-configurable heterogeneous
// pipeline produces a valid layout that respects per-server capacities and
// simulates cleanly with every placer.
func TestHeterogeneousScenarioEndToEnd(t *testing.T) {
	for _, placer := range []string{"slf", "wslf", "bsr", "roundrobin", "greedy"} {
		s := config.Paper()
		s.Servers = 6
		s.ServerBandwidthGbps = []float64{2.4, 2.4, 2.4, 1.2, 1.2, 1.2}
		s.ServerStorageGB = []float64{81, 81, 81, 27, 27, 27} // 3×30 + 3×10 = 120 replicas
		s.LambdaPerMin = 30
		s.Degree = 1.2
		s.Placer = placer
		p, layout, sched, err := vodcluster.Pipeline(s)
		if err != nil {
			t.Fatalf("%s: %v", placer, err)
		}
		used := layout.ServerStorageUsed(p)
		for sv, u := range used {
			if u > p.StorageOf(sv)*(1+1e-9) {
				t.Fatalf("%s overfilled server %d", placer, sv)
			}
		}
		res, err := sim.Run(sim.Config{Problem: p, Layout: layout, NewScheduler: sched, Seed: 4})
		if err != nil {
			t.Fatalf("%s: %v", placer, err)
		}
		if res.Requests == 0 {
			t.Fatalf("%s: no arrivals", placer)
		}
	}
}

// TestAnalyticConsistencyAcrossPlacers: for any placer's layout, the
// Erlang-B cluster prediction must be at least the pooled lower bound, and
// better-balanced layouts must never predict worse than clearly inferior
// ones.
func TestAnalyticConsistencyAcrossPlacers(t *testing.T) {
	s := config.Paper()
	s.Degree = 1.2
	p, err := s.Problem()
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := analytic.PooledBlocking(p)
	if err != nil {
		t.Fatal(err)
	}
	predictions := map[string]float64{}
	for _, placer := range []string{"slf", "roundrobin", "random"} {
		r, err := vodcluster.ReplicatorByName("zipf")
		if err != nil {
			t.Fatal(err)
		}
		pl, err := vodcluster.PlacerByName(placer)
		if err != nil {
			t.Fatal(err)
		}
		layout, err := vodcluster.BuildLayout(p, r, pl, s.Degree)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := analytic.ReplicatedBlocking(p, layout)
		if err != nil {
			t.Fatal(err)
		}
		if pred < pooled-1e-12 {
			t.Fatalf("%s: partitioned prediction %g below pooled bound %g", placer, pred, pooled)
		}
		predictions[placer] = pred
	}
	if predictions["slf"] > predictions["random"]+1e-9 {
		t.Fatalf("SLF layout predicts more blocking (%g) than a random layout (%g)",
			predictions["slf"], predictions["random"])
	}
}

// TestPlanRoundtripThroughPipeline: a plan written from one pipeline
// reproduces the identical simulation outcome when replayed.
func TestPlanRoundtripThroughPipeline(t *testing.T) {
	s := config.Paper()
	s.Videos = 40
	s.Servers = 4
	s.LambdaPerMin = 16
	p, layout, _, err := vodcluster.Pipeline(s)
	if err != nil {
		t.Fatal(err)
	}
	plan := config.NewPlan(s, layout)
	p2, layout2, err := plan.Layout()
	if err != nil {
		t.Fatal(err)
	}
	a, err := sim.Run(sim.Config{Problem: p, Layout: layout, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(sim.Config{Problem: p2, Layout: layout2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Requests != b.Requests || a.Rejected != b.Rejected ||
		math.Abs(a.ImbalanceAvg-b.ImbalanceAvg) > 1e-12 {
		t.Fatal("replayed plan diverged from the original pipeline")
	}
}

// TestTheoremBoundSurvivesPipeline: the facade-produced SLF layout respects
// the generalized Theorem 4.2 bound at paper scale.
func TestTheoremBoundSurvivesPipeline(t *testing.T) {
	for _, degree := range []float64{1.0, 1.2, 1.6, 2.0} {
		s := config.Paper()
		s.Degree = degree
		p, layout, _, err := vodcluster.Pipeline(s)
		if err != nil {
			t.Fatal(err)
		}
		bound := place.GeneralBound(p, layout.Replicas)
		got := core.ImbalanceStd(layout.ServerLoads(p))
		if got > bound+1e-9 {
			t.Fatalf("degree %g: Eq.3 L = %g exceeds bound %g", degree, got, bound)
		}
	}
}
