// Command vodsim runs one simulated peak period of a VoD cluster under a
// chosen replication/placement/scheduling combination and prints the
// measured rejection rate, load imbalance, and utilization, aggregated over
// replicated runs with 95% confidence intervals.
//
// The scenario comes either from flags (paper defaults) or a JSON file:
//
//	vodsim -lambda 40 -degree 1.2 -replicator zipf -placer slf -runs 20
//	vodsim -scenario scenario.json
//
// With -sweep, vodsim evaluates the same configuration across several
// arrival rates on the experiment harness (internal/exp), running the whole
// grid in parallel:
//
//	vodsim -sweep 8,16,24,32,40 -degree 1.2 -runs 20
//
// -series plots one curve per named scheduling policy over the same layout
// and common random numbers:
//
//	vodsim -sweep 8,16,24,32,40 -series static-rr,least-loaded
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"vodcluster"
	"vodcluster/internal/avail"
	"vodcluster/internal/cluster"
	"vodcluster/internal/config"
	"vodcluster/internal/core"
	"vodcluster/internal/dynrep"
	"vodcluster/internal/exp"
	"vodcluster/internal/obs"
	"vodcluster/internal/policy"
	"vodcluster/internal/report"
	"vodcluster/internal/resilience"
	"vodcluster/internal/sim"
	"vodcluster/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vodsim:", err)
		os.Exit(1)
	}
}

func run() error {
	s := config.Paper()
	scenarioPath := flag.String("scenario", "", "JSON scenario file (flags override nothing when set)")
	planPath := flag.String("plan", "", "replay a plan written by vodplace -out instead of recomputing the layout")
	flag.IntVar(&s.Servers, "servers", s.Servers, "number of servers N")
	flag.IntVar(&s.Videos, "videos", s.Videos, "number of videos M")
	flag.Float64Var(&s.Theta, "theta", s.Theta, "Zipf popularity skew θ")
	flag.Float64Var(&s.BitRateMbps, "bitrate", s.BitRateMbps, "encoding bit rate (Mb/s)")
	flag.Float64Var(&s.DurationMin, "duration", s.DurationMin, "video duration (minutes)")
	flag.Float64Var(&s.BandwidthGbps, "bandwidth", s.BandwidthGbps, "outgoing bandwidth per server (Gb/s)")
	flag.Float64Var(&s.BackboneGbps, "backbone", s.BackboneGbps, "internal backbone bandwidth (Gb/s); >0 enables redirection")
	flag.Float64Var(&s.StorageGB, "storage", s.StorageGB, "storage per server (GB); 0 derives from degree")
	flag.Float64Var(&s.LambdaPerMin, "lambda", s.LambdaPerMin, "arrival rate (requests/minute)")
	flag.Float64Var(&s.Degree, "degree", s.Degree, "target replication degree")
	flag.StringVar(&s.Replicator, "replicator", s.Replicator, "replication algorithm: adams|zipf|classification|uniform")
	flag.StringVar(&s.Placer, "placer", s.Placer, "placement algorithm: slf|roundrobin|greedy|random|wslf|bsr")
	flag.StringVar(&s.Scheduler, "scheduler", s.Scheduler, "scheduling policy: "+strings.Join(policy.Names(), "|"))
	listPolicies := flag.Bool("list-policies", false, "print the scheduling-policy registry and exit")
	flag.IntVar(&s.Runs, "runs", s.Runs, "number of simulation replications")
	flag.Int64Var(&s.Seed, "seed", s.Seed, "master random seed")
	perRun := flag.Bool("per-run", false, "print every run's result, not just the aggregate")
	mtbfH := flag.Float64("mtbf", 0, "server mean time between failures (hours); 0 disables failure injection")
	mttrMin := flag.Float64("mttr", 30, "server mean time to repair (minutes), used with -mtbf")
	streamLimit := flag.Int("stream-limit", 0, "max concurrent streams per server (disk bound); 0 = network only")
	dynamic := flag.Bool("dynamic", false, "enable runtime dynamic replication (needs -backbone > 0)")
	allResilience := flag.Bool("resilience", false, "enable every recovery mechanism (failover, retry, degrade, repair)")
	failover := flag.Bool("failover", false, "re-admit streams torn down by failures onto surviving replicas")
	retry := flag.Bool("retry", false, "queue rejected requests for retry with exponential backoff")
	retryPatience := flag.Float64("retry-patience", 0, "seconds a queued request keeps retrying before reneging; 0 = default (120)")
	degrade := flag.Bool("degrade", false, "serve a lower-rate copy when full-rate admission fails")
	degradeFloor := flag.Float64("degrade-floor", 0, "minimum fraction of nominal rate for degraded service/failover; 0 = default (0.5)")
	repair := flag.Bool("repair", false, "re-replicate under-replicated videos onto the least-loaded up server")
	repairMinLive := flag.Int("repair-min-live", 0, "live-replica threshold that triggers a repair copy; 0 = default (2)")
	sweepList := flag.String("sweep", "", "comma-separated arrival rates (req/min) to sweep instead of the single -lambda run; every other knob still applies")
	seriesList := flag.String("series", "", fmt.Sprintf("comma-separated named series for -sweep, each a scheduling policy curve over the same layout; available: %s (default: baseline)", strings.Join(sweepSeriesNames(), ", ")))
	workers := flag.Int("workers", 0, "parallel simulations across a -sweep; 0 = GOMAXPROCS, 1 = sequential")
	driftAt := flag.Float64("drift-at", 0, "re-rank the popularity curve at this virtual time (seconds); 0 disables; materializes the workload as a trace")
	driftRotate := flag.Int("drift-rotate", 0, "drift rank-rotation distance; 0 means half the catalog")
	driftShuffle := flag.Bool("drift-shuffle", false, "drift with a seeded random permutation instead of a rotation")
	driftSeed := flag.Int64("drift-seed", 1, "seed of the -drift-shuffle permutation")
	tracePath := flag.String("trace", "", "dump a session-lifecycle trace of the run(s) to this file (ring buffer of -trace-events)")
	traceFormat := flag.String("trace-format", "json", "trace dump format: json | chrome (chrome://tracing / Perfetto)")
	traceEvents := flag.Int("trace-events", obs.DefaultTraceEvents, "trace ring-buffer capacity (oldest events are overwritten)")
	flag.Parse()

	if *listPolicies {
		fmt.Print("Scheduling policies (shared registry, internal/policy):\n\n", policy.List())
		return nil
	}

	if *scenarioPath != "" {
		f, err := os.Open(*scenarioPath)
		if err != nil {
			return err
		}
		defer f.Close()
		s, err = config.Load(f)
		if err != nil {
			return err
		}
	}

	var (
		p      *core.Problem
		layout *core.Layout
		sched  func() cluster.Scheduler
	)
	if *planPath != "" {
		f, err := os.Open(*planPath)
		if err != nil {
			return err
		}
		plan, err := config.LoadPlan(f)
		f.Close()
		if err != nil {
			return err
		}
		runs, seed := s.Runs, s.Seed // keep the command-line knobs
		s = plan.Scenario
		s.Runs, s.Seed = runs, seed
		if p, layout, err = plan.Layout(); err != nil {
			return err
		}
		if sched, err = vodcluster.SchedulerFactory(s.Scheduler, p.BackboneBandwidth > 0); err != nil {
			return err
		}
	} else {
		var err error
		if p, layout, sched, err = vodcluster.Pipeline(s); err != nil {
			return err
		}
	}
	cfg := sim.Config{
		Problem:      p,
		Layout:       layout,
		NewScheduler: sched,
		Seed:         s.Seed,
		StreamLimit:  *streamLimit,
	}
	if *mtbfH > 0 {
		cfg.Failures = &avail.FailureModel{MTBF: *mtbfH * core.Hour, MTTR: *mttrMin * core.Minute}
	}
	pol := resilience.Policy{
		Failover:      *allResilience || *failover,
		Retry:         *allResilience || *retry,
		Degrade:       *allResilience || *degrade,
		Repair:        *allResilience || *repair,
		RetryPatience: *retryPatience,
		DegradeFloor:  *degradeFloor,
		RepairMinLive: *repairMinLive,
	}
	if pol.Enabled() {
		cfg.Resilience = &pol
	}
	if *dynamic {
		if p.BackboneBandwidth <= 0 {
			return fmt.Errorf("-dynamic needs -backbone > 0 for replica migrations")
		}
		newManager, err := dynrep.NewFactory(p, dynrep.Options{})
		if err != nil {
			return err
		}
		cfg.NewController = func() sim.Controller { return newManager() }
	}
	drift := workload.Drift{At: *driftAt, Rotate: *driftRotate, Shuffle: *driftShuffle, Seed: *driftSeed}
	if drift.Enabled() {
		if *sweepList != "" {
			return fmt.Errorf("-drift-at materializes a fixed trace and cannot combine with -sweep")
		}
		// A drift shock needs a concrete request sequence to rewrite, so the
		// scenario's arrival process is materialized once (every replication
		// replays the same drifted trace; the seed still drives scheduling).
		gen, err := workload.NewGenerator(workload.Poisson{Lambda: p.ArrivalRate}, p.M(), s.Theta)
		if err != nil {
			return err
		}
		tr := gen.Generate(p.PeakPeriod, s.Seed)
		if tr, err = drift.Apply(tr); err != nil {
			return err
		}
		cfg.Trace = tr
		cfg.Duration = tr.Meta.Duration
		fmt.Printf("drift: popularity re-ranked at t=%gs over a %d-request trace (shuffle=%v)\n",
			drift.At, len(tr.Requests), drift.Shuffle)
	}
	// Session tracing: one shared ring buffer across every replication. The
	// tracer publishes with atomics, so sharing it between parallel runs is
	// safe; events from different replications interleave in the dump (each
	// run restarts virtual time at 0).
	var tracer *obs.Tracer
	if *tracePath != "" {
		if *traceFormat != "json" && *traceFormat != "chrome" {
			return fmt.Errorf("-trace-format must be json or chrome, got %q", *traceFormat)
		}
		tracer = obs.NewTracer(*traceEvents)
		cfg.Hooks = append(cfg.Hooks, obs.NewSimHook(tracer))
	}
	dumpTrace := func() error {
		if tracer == nil {
			return nil
		}
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if *traceFormat == "chrome" {
			err = tracer.WriteChromeTrace(f)
		} else {
			err = tracer.WriteJSON(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			fmt.Fprintf(os.Stderr, "vodsim: trace (%d of %d events) written to %s\n",
				min(tracer.Total(), uint64(tracer.Cap())), tracer.Total(), *tracePath)
		}
		return err
	}
	if *sweepList != "" {
		if err := runSweep(s, cfg, *sweepList, *seriesList, *workers); err != nil {
			return err
		}
		return dumpTrace()
	}
	if *seriesList != "" {
		return fmt.Errorf("-series only applies to a -sweep")
	}
	agg, runs, err := sim.RunMany(cfg, s.Runs)
	if err != nil {
		return err
	}

	fmt.Printf("%s + %s + %s, degree %.2f, λ=%.3g req/min, θ=%.3g, %d runs\n",
		s.Replicator, s.Placer, s.Scheduler, layout.ReplicationDegree(), s.LambdaPerMin, s.Theta, s.Runs)
	t := report.NewTable("metric", "mean", "95% CI", "min", "max")
	t.AddRowf("rejection rate (%)", 100*agg.RejectionRate.Mean(), 100*agg.RejectionRate.CI95(),
		100*agg.RejectionRate.Min(), 100*agg.RejectionRate.Max())
	t.AddRowf("load imbalance L (Eq.2)", agg.ImbalanceAvg.Mean(), agg.ImbalanceAvg.CI95(),
		agg.ImbalanceAvg.Min(), agg.ImbalanceAvg.Max())
	t.AddRowf("peak imbalance", agg.ImbalancePeak.Mean(), agg.ImbalancePeak.CI95(),
		agg.ImbalancePeak.Min(), agg.ImbalancePeak.Max())
	t.AddRowf("mean utilization", agg.MeanUtilization.Mean(), agg.MeanUtilization.CI95(),
		agg.MeanUtilization.Min(), agg.MeanUtilization.Max())
	if agg.Redirected.Max() > 0 {
		t.AddRowf("redirected requests", agg.Redirected.Mean(), agg.Redirected.CI95(),
			agg.Redirected.Min(), agg.Redirected.Max())
	}
	if agg.Dropped.Max() > 0 || agg.Reneged.Max() > 0 {
		t.AddRowf("dropped streams", agg.Dropped.Mean(), agg.Dropped.CI95(),
			agg.Dropped.Min(), agg.Dropped.Max())
		t.AddRowf("failure rate (%)", 100*agg.FailureRate.Mean(), 100*agg.FailureRate.CI95(),
			100*agg.FailureRate.Min(), 100*agg.FailureRate.Max())
	}
	if agg.FailedOver.Max() > 0 {
		t.AddRowf("failed-over streams", agg.FailedOver.Mean(), agg.FailedOver.CI95(),
			agg.FailedOver.Min(), agg.FailedOver.Max())
	}
	if agg.Reneged.Max() > 0 {
		t.AddRowf("reneged retries", agg.Reneged.Mean(), agg.Reneged.CI95(),
			agg.Reneged.Min(), agg.Reneged.Max())
	}
	if agg.Degraded.Max() > 0 {
		t.AddRowf("degraded sessions", agg.Degraded.Mean(), agg.Degraded.CI95(),
			agg.Degraded.Min(), agg.Degraded.Max())
		t.AddRowf("degradation ratio", agg.DegradationRatio.Mean(), agg.DegradationRatio.CI95(),
			agg.DegradationRatio.Min(), agg.DegradationRatio.Max())
	}
	if agg.ReReplications.Max() > 0 {
		t.AddRowf("repair copies", agg.ReReplications.Mean(), agg.ReReplications.CI95(),
			agg.ReReplications.Min(), agg.ReReplications.Max())
	}
	if err := t.Fprint(os.Stdout); err != nil {
		return err
	}

	if *perRun {
		fmt.Println()
		for i, r := range runs {
			fmt.Printf("run %2d: %s\n", i, r)
		}
	}
	return dumpTrace()
}

// sweepSeriesNames lists the named -series curves a sweep can plot: the
// "baseline" pseudo-series, every policy from the shared registry, then the
// "redirect" pseudo-series.
func sweepSeriesNames() []string {
	names := []string{"baseline"}
	names = append(names, policy.Names()...)
	return append(names, "redirect")
}

// sweepSchedulerFor resolves one -series name to its scheduler factory.
// "baseline" is the scenario's own policy (with redirection exactly when the
// cluster has a backbone); a bare registry policy name forces that scheduler
// without redirection; "redirect" wraps the scenario's policy with backbone
// redirection regardless.
func sweepSchedulerFor(name string, s config.Scenario, backbone bool) (func() cluster.Scheduler, error) {
	switch name {
	case "baseline":
		return vodcluster.SchedulerFactory(s.Scheduler, backbone)
	case "redirect":
		if !backbone {
			return nil, fmt.Errorf("-series redirect needs -backbone > 0")
		}
		return vodcluster.SchedulerFactory(s.Scheduler, true)
	}
	f, err := policy.SchedulerFactory(name, false)
	if err != nil {
		return nil, fmt.Errorf("unknown sweep series %q (available: %s)", name, strings.Join(sweepSeriesNames(), ", "))
	}
	return f, nil
}

// runSweep evaluates the assembled configuration across several arrival
// rates on the experiment harness — the whole grid runs in parallel, and
// results are identical for every -workers value at the same seed. With
// -series, one curve per named scheduling policy is swept over the same
// layout and common random numbers, so the curves are directly comparable.
func runSweep(s config.Scenario, cfg sim.Config, list, seriesList string, workers int) error {
	lambdas, err := parseLambdas(list)
	if err != nil {
		return err
	}
	names := []string{"baseline"}
	if seriesList != "" {
		names = names[:0]
		for _, part := range strings.Split(seriesList, ",") {
			names = append(names, strings.TrimSpace(part))
		}
	}
	series := make([]exp.Series, 0, len(names))
	for _, name := range names {
		sched, err := sweepSchedulerFor(name, s, cfg.Problem.BackboneBandwidth > 0)
		if err != nil {
			return err
		}
		series = append(series, exp.Series{Name: name, Config: func(lam float64) (sim.Config, error) {
			q := cfg.Problem.Clone()
			q.ArrivalRate = lam / core.Minute
			c := cfg
			c.Problem = q
			c.NewScheduler = sched
			return c, nil
		}})
	}
	sw := &exp.Sweep{
		Xs:      lambdas,
		Series:  series,
		Runs:    s.Runs,
		Seed:    s.Seed,
		Workers: workers,
	}
	grid, err := sw.Run()
	if err != nil {
		return err
	}
	fmt.Printf("%s + %s + %s, λ sweep {%s} req/min, θ=%.3g, %d runs/point\n",
		s.Replicator, s.Placer, s.Scheduler, list, s.Theta, s.Runs)
	t := report.NewTable("series", "λ (req/min)", "rejected %", "± 95% CI", "imbalance L (Eq.2)", "mean utilization", "failure rate %")
	for i, pts := range grid {
		for _, pt := range pts {
			t.AddRowf(names[i], pt.X,
				100*pt.Agg.RejectionRate.Mean(), 100*pt.Agg.RejectionRate.CI95(),
				pt.Agg.ImbalanceAvg.Mean(), pt.Agg.MeanUtilization.Mean(),
				100*pt.Agg.FailureRate.Mean())
		}
	}
	return t.Fprint(os.Stdout)
}

// parseLambdas parses the -sweep list: comma-separated positive rates.
func parseLambdas(list string) ([]float64, error) {
	parts := strings.Split(list, ",")
	lambdas := make([]float64, 0, len(parts))
	for _, part := range parts {
		lam, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("-sweep: bad arrival rate %q: %v", part, err)
		}
		if lam <= 0 {
			return nil, fmt.Errorf("-sweep: arrival rate must be positive, got %g", lam)
		}
		lambdas = append(lambdas, lam)
	}
	return lambdas, nil
}
