// Command vodmap works the hierarchical media mapping problem (paper ref.
// [28]): build a balanced server tree, map a catalog onto it with the
// root-only / greedy / simulated-annealing strategies, and report local hit
// ratio, mean hops, and link utilization — analytically and, with -simulate,
// from the discrete-event simulator.
//
// Levels are specified root first as storageReplicas:streamGbps:uplinkGbps
// (the root's uplink is ignored):
//
//	vodmap -fanout 2 -levels 120:20:0,30:4:4,12:2:2 -videos 100 -regional -simulate
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"vodcluster/internal/anneal"
	"vodcluster/internal/core"
	"vodcluster/internal/hierarchy"
	"vodcluster/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vodmap:", err)
		os.Exit(1)
	}
}

func run() error {
	fanout := flag.Int("fanout", 2, "children per inner node")
	levels := flag.String("levels", "120:20:0,30:4:4,12:2:2",
		"per-level specs root first: storageReplicas:streamGbps:uplinkGbps")
	videos := flag.Int("videos", 100, "catalog size M")
	theta := flag.Float64("theta", 0.75, "Zipf popularity skew θ")
	bitrate := flag.Float64("bitrate", 4, "encoding rate (Mb/s)")
	durationMin := flag.Float64("duration", 90, "video duration (minutes)")
	leafLambda := flag.Float64("leaf-lambda", 5, "arrival rate per leaf (requests/minute)")
	regional := flag.Bool("regional", false, "give each leaf a rotated popularity ranking")
	optimize := flag.Bool("optimize", true, "run the simulated-annealing mapping")
	simulate := flag.Bool("simulate", false, "also run the discrete-event simulation per mapping")
	seed := flag.Int64("seed", 42, "random seed")
	annealSteps := flag.Int("anneal-steps", 0, "annealer: cap proposals per chain (0 = default schedule)")
	annealChains := flag.Int("anneal-chains", 4, "annealer: parallel independent chains")
	annealSeed := flag.Int64("anneal-seed", -1, "annealer: seed override (-1 = use -seed)")
	flag.Parse()

	catalog, err := core.NewCatalog(*videos, *theta, *bitrate*core.Mbps, *durationMin*core.Minute)
	if err != nil {
		return err
	}
	size := catalog[0].SizeBytes()

	var nodeLevels []hierarchy.Node
	for _, spec := range strings.Split(*levels, ",") {
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			return fmt.Errorf("level %q: want storageReplicas:streamGbps:uplinkGbps", spec)
		}
		vals := make([]float64, 3)
		for i, s := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return fmt.Errorf("level %q: %w", spec, err)
			}
			vals[i] = v
		}
		nodeLevels = append(nodeLevels, hierarchy.Node{
			StorageBytes: vals[0] * size,
			StreamBW:     vals[1] * core.Gbps,
			UplinkBW:     vals[2] * core.Gbps,
		})
	}
	topo, err := hierarchy.NewUniformTree(*fanout, nodeLevels)
	if err != nil {
		return err
	}

	leaves := topo.Leaves()
	rates := make([]float64, len(leaves))
	for i := range rates {
		rates[i] = *leafLambda / core.Minute
	}
	problem := &hierarchy.Problem{Topo: topo, Catalog: catalog, LeafRate: rates}
	if *regional {
		pops := make([][]float64, len(leaves))
		shift := *videos / (len(leaves) + 1)
		for li := range pops {
			pops[li] = make([]float64, len(catalog))
			for v := range catalog {
				pops[li][v] = catalog[(v+li*shift)%len(catalog)].Popularity
			}
		}
		problem.LeafPopularity = pops
	}
	if err := problem.Validate(); err != nil {
		return err
	}

	fmt.Printf("tree: fanout %d, %d levels, %d nodes, %d leaves; %d videos, θ=%.2f, λ=%.3g/min per leaf\n\n",
		*fanout, len(nodeLevels), topo.Len(), len(leaves), *videos, *theta, *leafLambda)

	mappings := []struct {
		name string
		m    *hierarchy.Mapping
	}{
		{"root only", hierarchy.NewMapping(problem)},
		{"greedy top-popularity", hierarchy.GreedyMapping(problem)},
	}
	if *optimize {
		opts := anneal.DefaultOptions()
		opts.InitialTemp = 0.5
		opts.Seed = *seed
		if *annealSteps > 0 {
			opts.MaxSteps = *annealSteps
		}
		if *annealSeed >= 0 {
			opts.Seed = *annealSeed
		}
		chains := *annealChains
		if chains <= 0 {
			chains = 1
		}
		best, _, err := hierarchy.Optimize(problem, opts, chains)
		if err != nil {
			return err
		}
		mappings = append(mappings, struct {
			name string
			m    *hierarchy.Mapping
		}{"simulated annealing", best})
	}

	headers := []string{"mapping", "local hit %", "mean hops", "max link util", "max node util"}
	if *simulate {
		headers = append(headers, "sim hit %", "sim hops", "sim rejected %")
	}
	t := report.NewTable(headers...)
	for _, entry := range mappings {
		e := problem.Evaluate(entry.m)
		row := []any{entry.name, 100 * e.LocalHitRatio, e.MeanHops, e.MaxLinkUtil, e.MaxNodeUtil}
		if *simulate {
			res, err := hierarchy.Simulate(hierarchy.SimConfig{
				Problem: problem, Mapping: entry.m,
				Duration: 2 * catalog[0].Duration, Seed: *seed,
			})
			if err != nil {
				return err
			}
			row = append(row, 100*res.LocalHitRatio, res.MeanHops, 100*res.RejectionRate)
		}
		t.AddRowf(row...)
	}
	return t.Fprint(os.Stdout)
}
