// Command vodload is an open-loop load generator for vodserved: it replays
// a workload.Trace (or generates Poisson/Zipf arrivals) against the daemon
// at a configurable time-compression factor and reports accepted, rejected,
// and redirected counts plus admission-latency percentiles.
//
//	vodload -addr http://127.0.0.1:8370 -trace trace.json -compress 60
//	vodload -selftest -rate 8000 -burst 1          # in-process daemon
//	vodload -selftest -validate                    # live vs sim.Run check
//
// With -validate, the same trace also runs through the discrete-event
// simulator (sim.Run) and the live and simulated rejection rates must agree
// within -tolerance percentage points — the cross-validation tying the
// serving layer back to the paper's Fig. 4 predictions. With -bench-out,
// a JSON benchmark record (throughput, latency percentiles) is written.
//
// With -faults, a scripted fault schedule replays against the daemon over
// HTTP while the trace runs: backends crash, recover, drain, and restore at
// their scheduled virtual times (the failure drill of DESIGN.md §12). The
// selftest daemon then runs with the re-replication repairer attached so it
// heals itself, -validate feeds the same failures to sim.Run
// (Config.FailAt + Resilience) and additionally compares the post-failure
// rejection rates — live decisions dispatched after the first crash against
// a simulator run warmed up to that instant — and the benchmark record
// gains post_failure_decisions_per_sec, which the vodperf gate tracks.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"vodcluster"
	"vodcluster/internal/cluster"
	"vodcluster/internal/config"
	"vodcluster/internal/core"
	"vodcluster/internal/faults"
	"vodcluster/internal/obs"
	"vodcluster/internal/report"
	"vodcluster/internal/resilience"
	"vodcluster/internal/serve"
	"vodcluster/internal/sim"
	"vodcluster/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vodload:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "", "daemon base URL, e.g. http://127.0.0.1:8370; empty requires -selftest")
	selftest := flag.Bool("selftest", false, "start an in-process vodserved on a loopback port and load it")
	scenarioPath := flag.String("scenario", "", "JSON scenario for the layout (selftest/validate); empty uses the paper defaults")
	planPath := flag.String("plan", "", "plan file for the layout (selftest/validate)")
	policy := flag.String("policy", "least-loaded", "admission policy of the in-process daemon (selftest)")
	shards := flag.Int("shards", 1, "admission dispatch shards of the in-process daemon (selftest); 1 runs the single-queue engine")
	listeners := flag.Int("listeners", 0, "sharded ingress accept loops of the in-process daemon (selftest); 0 serves the plain net/http mux")
	conns := flag.Int("conns", 0, "persistent fast connections the replay drives; 0 picks 4×GOMAXPROCS clamped to [8,64]")
	tracePath := flag.String("trace", "", "replay this trace file instead of generating arrivals")
	rate := flag.Float64("rate", 8000, "generated load: admission decisions per wall second")
	burst := flag.Float64("burst", 1, "generated load: burst length in wall seconds")
	compress := flag.Float64("compress", 3600, "time-compression factor; must match the daemon's -compress")
	seed := flag.Int64("seed", 42, "seed for generated arrivals")
	validate := flag.Bool("validate", false, "cross-validate the live rejection rate against sim.Run on the same trace")
	tolerance := flag.Float64("tolerance", 2, "allowed |live−sim| rejection-rate gap in percentage points (-validate)")
	benchOut := flag.String("bench-out", "", "write a JSON benchmark record (throughput, latency percentiles) to this file")
	faultsPath := flag.String("faults", "", "replay this JSON fault schedule against the daemon over HTTP during the trace")
	driftAt := flag.Float64("drift-at", 0, "re-rank the popularity curve at this virtual time (seconds); 0 disables")
	driftRotate := flag.Int("drift-rotate", 0, "drift rank-rotation distance; 0 means half the catalog")
	driftShuffle := flag.Bool("drift-shuffle", false, "drift with a seeded random permutation instead of a rotation")
	driftSeed := flag.Int64("drift-seed", 1, "seed of the -drift-shuffle permutation")
	flag.Parse()

	if !*selftest && *addr == "" {
		return fmt.Errorf("need -addr or -selftest")
	}
	if *compress <= 0 {
		return fmt.Errorf("-compress must be positive, got %g", *compress)
	}
	if *tracePath == "" && (*rate <= 0 || *burst <= 0) {
		return fmt.Errorf("-rate and -burst must be positive, got %g and %g", *rate, *burst)
	}

	p, layout, err := loadLayout(*scenarioPath, *planPath)
	if err != nil {
		return err
	}

	var sched *faults.Schedule
	if *faultsPath != "" {
		f, err := os.Open(*faultsPath)
		if err != nil {
			return err
		}
		sched, err = faults.Load(f)
		f.Close()
		if err != nil {
			return err
		}
		if err := sched.Validate(p.N()); err != nil {
			return err
		}
	}

	// The trace drives both the live replay and (under -validate) the
	// simulator, so one generation covers both sides.
	var tr *workload.Trace
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		tr, err = workload.Load(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		theta := estimateThetaOf(p)
		gen, err := workload.NewGenerator(workload.Poisson{Lambda: *rate / *compress}, p.M(), theta)
		if err != nil {
			return err
		}
		tr = gen.Generate(*burst**compress, *seed)
	}
	if len(tr.Requests) == 0 {
		return fmt.Errorf("trace is empty; raise -rate or -burst")
	}
	drift := workload.Drift{At: *driftAt, Rotate: *driftRotate, Shuffle: *driftShuffle, Seed: *driftSeed}
	if drift.Enabled() {
		if tr, err = drift.Apply(tr); err != nil {
			return err
		}
		fmt.Printf("drift: popularity re-ranked at t=%gs (shuffle=%v)\n", drift.At, drift.Shuffle)
	}

	base := *addr
	if *selftest {
		// A fault drill needs the daemon to heal itself, so the repairer
		// rides along exactly when a schedule is loaded.
		srv, stop, baseURL, err := startInProcess(p, layout, *policy, *compress, *shards, *listeners, sched != nil)
		if err != nil {
			return err
		}
		defer stop()
		defer srv.Shutdown()
		base = baseURL
		fmt.Printf("selftest daemon: %s (policy %s, compress %gx, %d shards)\n", base, srv.PolicyName(), srv.Compress(), srv.Shards())
	}

	client := serve.NewClient(base)
	client.Conns = *conns
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The fault schedule replays over HTTP concurrently with the trace, from
	// the same starting instant, so an event at virtual time t lands t/compress
	// wall seconds into the replay — on the same clock the requests use.
	var schedErr chan error
	if sched != nil {
		schedErr = make(chan error, 1)
		go func() {
			schedErr <- sched.Run(ctx, *compress, func(e faults.Event) error {
				fmt.Printf("fault: %s backend %d (t=%gs)\n", e.Action, e.Backend, e.At)
				return client.Fault(ctx, e)
			})
		}()
	}
	rep, err := client.Replay(ctx, tr, *compress)
	if err != nil {
		return err
	}
	if schedErr != nil {
		if err := <-schedErr; err != nil {
			return err
		}
	}
	if rep.Errors > 0 {
		return fmt.Errorf("%d transport errors during replay; first: %v", rep.Errors, rep.FirstError)
	}

	if err := printReport(tr, rep, sched, *compress); err != nil {
		return err
	}

	// A generator that cannot sustain the requested rate silently measures
	// itself, not the daemon: admission latency and throughput both look
	// rosier under a thinner-than-asked-for load. Compare what the dispatcher
	// achieved against what the trace demanded and say so out loud.
	requested, achieved, bound := offeredRate(tr, rep, *compress)
	fmt.Printf("offered load: %.0f of %.0f requested decisions/sec (max dispatch lag %.1fms)\n",
		achieved, requested, rep.DispatchLagMax.Seconds()*1e3)
	if bound {
		fmt.Printf("WARNING: generator under-drove the daemon (offered %.0f/sec of the requested %.0f/sec); results are generator-bound — raise -conns or lower -rate\n",
			achieved, requested)
	}

	// Satellite duty of the smoke path: the daemon's own /metrics must agree
	// that sessions were admitted — a scrape-level liveness check, not just a
	// client-side count.
	accepted, err := scrapeAccepted(client)
	if err != nil {
		return err
	}
	if accepted == 0 && rep.Accepted > 0 {
		return fmt.Errorf("/metrics reports zero accepted sessions, client saw %d", rep.Accepted)
	}
	fmt.Printf("/metrics scrape: %d accepted admission decisions\n", accepted)
	if rep.Accepted == 0 {
		return fmt.Errorf("no sessions admitted; the daemon rejected the whole burst")
	}

	if *benchOut != "" {
		if err := writeBench(*benchOut, tr, rep, sched, *compress, *policy, *seed, *rate, *burst, *shards, achieved, bound); err != nil {
			return err
		}
		fmt.Printf("benchmark record written to %s\n", *benchOut)
	}

	if *validate {
		return crossValidate(p, layout, *policy, tr, rep, sched, *seed, *tolerance)
	}
	return nil
}

// postFailureWindow returns the virtual time of the schedule's first crash
// and whether there is a post-failure window to measure at all.
func postFailureWindow(tr *workload.Trace, sched *faults.Schedule) (float64, bool) {
	if sched == nil {
		return 0, false
	}
	failAt := sched.FirstFailAt()
	return failAt, failAt >= 0 && failAt < tr.Meta.Duration
}

// postFailureDecisionsPerSec measures settled admission throughput over the
// window from the first scripted crash to the end of the trace — the gated
// proof that failure handling (eviction scans, health state reads, repair
// traffic) does not stall the admission path.
func postFailureDecisionsPerSec(tr *workload.Trace, rep *serve.Report, sched *faults.Schedule, compress float64) float64 {
	failAt, ok := postFailureWindow(tr, sched)
	if !ok {
		return 0
	}
	wall := (tr.Meta.Duration - failAt) / compress
	if wall <= 0 {
		return 0
	}
	n, _ := rep.Since(failAt)
	return float64(n) / wall
}

// offeredRate compares the dispatch rate the replay achieved against the
// rate the trace requested. bound reports a generator that fell more than 3%
// short — the threshold under which timer jitter is indistinguishable from
// genuine saturation.
func offeredRate(tr *workload.Trace, rep *serve.Report, compress float64) (requested, achieved float64, bound bool) {
	if tr.Meta.Duration > 0 {
		requested = float64(len(tr.Requests)) * compress / tr.Meta.Duration
	}
	achieved = rep.OfferedRate()
	bound = requested > 0 && achieved < 0.97*requested
	return requested, achieved, bound
}

// estimateThetaOf recovers the Zipf skew the catalog was built with by
// inverting the popularity curve (the generator wants θ, the problem stores
// popularities): p_i ∝ 1/i^θ ⇒ θ = log(p_1/p_2)/log 2.
func estimateThetaOf(p *core.Problem) float64 {
	pops := p.Catalog.Popularities()
	if len(pops) < 2 || pops[0] <= 0 || pops[1] <= 0 {
		return 0
	}
	theta := (math.Log(pops[0]) - math.Log(pops[1])) / math.Log(2)
	if theta < 0 {
		return 0
	}
	return theta
}

// printReport renders the replay outcome tables.
func printReport(tr *workload.Trace, rep *serve.Report, sched *faults.Schedule, compress float64) error {
	fmt.Printf("replayed %d requests (%.0fs of virtual time at %gx compression) in %.2fs wall\n",
		len(tr.Requests), tr.Meta.Duration, compress, rep.Wall.Seconds())
	t := report.NewTable("outcome", "count", "% of decisions")
	total := float64(rep.Requests)
	t.AddRowf("accepted", rep.Accepted, 100*float64(rep.Accepted)/total)
	t.AddRowf("rejected", rep.Rejected, 100*float64(rep.Rejected)/total)
	if rep.Draining > 0 {
		t.AddRowf("rejected (draining)", rep.Draining, 100*float64(rep.Draining)/total)
	}
	if rep.Redirected > 0 {
		t.AddRowf("redirected", rep.Redirected, 100*float64(rep.Redirected)/total)
	}
	if err := t.Fprint(os.Stdout); err != nil {
		return err
	}
	lt := report.NewTable("admission latency", "ms")
	lt.AddRowf("p50", rep.LatencyQuantile(0.50).Seconds()*1e3)
	lt.AddRowf("p90", rep.LatencyQuantile(0.90).Seconds()*1e3)
	lt.AddRowf("p99", rep.LatencyQuantile(0.99).Seconds()*1e3)
	lt.AddRowf("max", rep.LatencyQuantile(1).Seconds()*1e3)
	if err := lt.Fprint(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("throughput: %.0f admission decisions/sec\n", rep.DecisionsPerSec())
	if failAt, ok := postFailureWindow(tr, sched); ok {
		n, rej := rep.Since(failAt)
		pct := 0.0
		if n > 0 {
			pct = 100 * float64(rej) / float64(n)
		}
		fmt.Printf("post-failure window (t ≥ %gs): %d decisions, %.2f%% rejected, %.0f decisions/sec\n",
			failAt, n, pct, postFailureDecisionsPerSec(tr, rep, sched, compress))
	}
	return nil
}

// startInProcess boots a vodserved instance on a loopback port inside this
// process — the zero-dependency path the smoke target and quick experiments
// use. withRepair attaches and starts the re-replication repairer (at the
// simulator-parity defaults) so a scripted crash heals the same way a
// sim.Run with Resilience.Repair does. listeners > 0 fronts the daemon with
// the sharded ingress (that many accept loops) instead of the net/http mux.
func startInProcess(p *core.Problem, layout *core.Layout, policy string, compress float64, shards, listeners int, withRepair bool) (*serve.Server, func(), string, error) {
	srv, err := serve.New(p, layout, serve.Config{Policy: policy, Compress: compress, Shards: shards})
	if err != nil {
		return nil, nil, "", err
	}
	srv.AttachInjector(faults.NewInjector())
	if withRepair {
		rep, err := serve.NewRepairer(srv, serve.RepairConfig{})
		if err != nil {
			return nil, nil, "", err
		}
		rep.Start()
	}
	if listeners > 0 {
		ing, err := serve.NewIngress(srv, serve.IngressConfig{Listeners: listeners})
		if err != nil {
			return nil, nil, "", err
		}
		addr, err := ing.Start("127.0.0.1:0")
		if err != nil {
			return nil, nil, "", err
		}
		return srv, ing.Close, "http://" + addr.String(), nil
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, "", err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	stop := func() { _ = hs.Close() }
	return srv, stop, "http://" + ln.Addr().String(), nil
}

// scrapeAccepted parses vod_requests_total{outcome="accepted"} out of the
// daemon's Prometheus exposition.
func scrapeAccepted(client *serve.Client) (int64, error) {
	text, err := client.Metrics(context.Background())
	if err != nil {
		return 0, fmt.Errorf("scraping /metrics: %w", err)
	}
	const key = `vod_requests_total{outcome="accepted"} `
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, key); ok {
			return strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
		}
	}
	return 0, fmt.Errorf("/metrics has no accepted-requests counter")
}

// crossValidate replays the same trace through sim.Run and compares
// rejection rates: the serving layer must reproduce the simulator (and so
// the paper's Fig. 4 curve) within the tolerance. Under a fault schedule the
// simulator injects the same scripted crashes (Config.FailAt) with failover
// and repair enabled at the live daemon's defaults, and a second comparison
// covers only the decisions dispatched after the first crash — the window
// where failure handling, not steady-state admission, sets the rate.
func crossValidate(p *core.Problem, layout *core.Layout, policy string, tr *workload.Trace, rep *serve.Report, fsched *faults.Schedule, seed int64, tolPts float64) error {
	newSched, err := simSchedulerFor(policy, p.BackboneBandwidth > 0)
	if err != nil {
		return err
	}
	cfg := sim.Config{
		Problem:      p,
		Layout:       layout,
		NewScheduler: newSched,
		Trace:        tr,
		Duration:     tr.Meta.Duration,
		Seed:         seed,
	}
	if fsched != nil {
		cfg.FailAt = fsched.FailAt()
		// Failover is always on in the live engine; repair matches the
		// selftest daemon's RepairConfig defaults (shared with the sim).
		cfg.Resilience = &resilience.Policy{Failover: true, Repair: true}
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return err
	}
	livePct := 100 * rep.RejectionRate()
	simPct := 100 * res.RejectionRate
	delta := math.Abs(livePct - simPct)
	t := report.NewTable("side", "requests", "rejected %", "accepted")
	t.AddRowf("live daemon", rep.Requests, livePct, rep.Accepted)
	t.AddRowf("sim.Run", res.Requests, simPct, res.Accepted)
	if err := t.Fprint(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("cross-validation: |live − sim| = %.2f points (tolerance %.2f)\n", delta, tolPts)
	if delta > tolPts {
		return fmt.Errorf("live rejection rate %.2f%% deviates from simulated %.2f%% by more than %.2f points", livePct, simPct, tolPts)
	}
	fmt.Printf("cross-validation OK: %.2f points of margin under the %.2f-point tolerance\n", tolPts-delta, tolPts)

	failAt, ok := postFailureWindow(tr, fsched)
	if !ok {
		return nil
	}
	// Post-failure window: sim.Run with Warmup counts only arrivals at or
	// after the boundary, exactly what Report.Since measures on the live side.
	pfCfg := cfg
	pfCfg.Warmup = failAt
	pfRes, err := sim.Run(pfCfg)
	if err != nil {
		return err
	}
	liveN, liveRej := rep.Since(failAt)
	if liveN == 0 {
		return fmt.Errorf("no live decisions dispatched after the first crash at t=%gs", failAt)
	}
	livePct = 100 * float64(liveRej) / float64(liveN)
	simPct = 100 * pfRes.RejectionRate
	delta = math.Abs(livePct - simPct)
	pt := report.NewTable("post-failure side", "requests", "rejected %")
	pt.AddRowf("live daemon", liveN, livePct)
	pt.AddRowf("sim.Run (warmup)", pfRes.Requests, simPct)
	if err := pt.Fprint(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("post-failure cross-validation: |live − sim| = %.2f points (tolerance %.2f)\n", delta, tolPts)
	if delta > tolPts {
		return fmt.Errorf("post-failure live rejection rate %.2f%% deviates from simulated %.2f%% by more than %.2f points", livePct, simPct, tolPts)
	}
	fmt.Printf("post-failure cross-validation OK: %.2f points of margin under the %.2f-point tolerance\n", tolPts-delta, tolPts)
	return nil
}

// simSchedulerFor maps a serve policy name onto the simulator scheduler
// that makes the same decisions: lock-free names map to their bare
// cluster.Scheduler counterparts; sim: names follow the pipeline convention
// (redirect wrapping exactly when the problem defines backbone bandwidth).
func simSchedulerFor(policy string, backbone bool) (func() cluster.Scheduler, error) {
	if base, ok := strings.CutPrefix(policy, "sim:"); ok {
		return vodcluster.SchedulerFactory(base, backbone)
	}
	if policy == "" {
		policy = "least-loaded"
	}
	return vodcluster.SchedulerFactory(policy, false)
}

// writeBench records the replay as a JSON benchmark artifact
// (BENCH_serve.json in CI) so serving throughput stays comparable across
// revisions. The embedded manifest pins the environment the numbers came
// from (git SHA, CPU, GOMAXPROCS, seed, flags).
func writeBench(path string, tr *workload.Trace, rep *serve.Report, sched *faults.Schedule, compress float64, policy string, seed int64, rate, burst float64, shards int, achieved float64, bound bool) error {
	man := obs.NewManifest()
	man.Seed = seed
	man.Flags = map[string]string{
		"policy":   policy,
		"compress": fmt.Sprint(compress),
		"rate":     fmt.Sprint(rate),
		"burst":    fmt.Sprint(burst),
		"shards":   fmt.Sprint(shards),
	}
	if sched != nil {
		man.Flags["faults"] = fmt.Sprintf("%d events", len(sched.Events))
	}
	rec := struct {
		Generated       string       `json:"generated"`
		Manifest        obs.Manifest `json:"manifest"`
		Policy          string       `json:"policy"`
		Compress        float64      `json:"compress"`
		Requests        int          `json:"requests"`
		Accepted        int          `json:"accepted"`
		Rejected        int          `json:"rejected"`
		Redirected      int          `json:"redirected"`
		WallSeconds     float64      `json:"wall_seconds"`
		DecisionsPerSec float64      `json:"decisions_per_sec"`
		// PostFailureDecisionsPerSec is settled throughput over the window
		// from the first scripted crash to the end of the trace; present
		// only when a fault schedule ran (vodperf -compare gates it, so a
		// faulted baseline keeps every later run honest about it).
		PostFailureDecisionsPerSec float64 `json:"post_failure_decisions_per_sec,omitempty"`
		LatencyP50Ms               float64 `json:"latency_p50_ms"`
		LatencyP90Ms               float64 `json:"latency_p90_ms"`
		LatencyP99Ms               float64 `json:"latency_p99_ms"`
		LatencyMaxMs               float64 `json:"latency_max_ms"`
		VirtualSeconds             float64 `json:"virtual_seconds"`
		// AchievedRate is the dispatch rate the generator actually offered;
		// OfferedRateBound marks a record whose generator fell short of the
		// requested rate, so its numbers bound the generator, not the daemon.
		AchievedRate     float64 `json:"achieved_rate"`
		OfferedRateBound bool    `json:"offered_rate_bound,omitempty"`
	}{
		Generated:                  time.Now().UTC().Format(time.RFC3339),
		Manifest:                   man,
		Policy:                     policy,
		Compress:                   compress,
		Requests:                   rep.Requests,
		Accepted:                   rep.Accepted,
		Rejected:                   rep.Rejected + rep.Draining,
		Redirected:                 rep.Redirected,
		WallSeconds:                rep.Wall.Seconds(),
		DecisionsPerSec:            rep.DecisionsPerSec(),
		PostFailureDecisionsPerSec: postFailureDecisionsPerSec(tr, rep, sched, compress),
		LatencyP50Ms:               rep.LatencyQuantile(0.50).Seconds() * 1e3,
		LatencyP90Ms:               rep.LatencyQuantile(0.90).Seconds() * 1e3,
		LatencyP99Ms:               rep.LatencyQuantile(0.99).Seconds() * 1e3,
		LatencyMaxMs:               rep.LatencyQuantile(1).Seconds() * 1e3,
		VirtualSeconds:             tr.Meta.Duration,
		AchievedRate:               achieved,
		OfferedRateBound:           bound,
	}
	buf, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	var flat map[string]json.RawMessage
	if err := json.Unmarshal(buf, &flat); err != nil {
		return err
	}
	// A checked-in baseline may carry sections merged in by other tools
	// (`vodperf -bench scale -merge`, `vodperf -bench http -merge`). The
	// replay only re-measures the flat keys, so carry those sections over —
	// otherwise every serve-smoke refresh would silently strip them and
	// disarm their gates.
	if prev, err := os.ReadFile(path); err == nil {
		preserveSections(flat, prev)
	}
	out, err := json.MarshalIndent(flat, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// preservedSections are the benchmark-record sections owned by vodperf
// -merge rather than the replay: writeBench must carry them across a
// flat-key refresh.
var preservedSections = []string{"scaling", "http"}

// preserveSections copies vodperf-owned sections from a previous benchmark
// record into a freshly measured flat map, without overwriting a section the
// new record already has.
func preserveSections(flat map[string]json.RawMessage, prev []byte) {
	var old map[string]json.RawMessage
	if json.Unmarshal(prev, &old) != nil {
		return
	}
	for _, key := range preservedSections {
		if sec, ok := old[key]; ok {
			if _, fresh := flat[key]; !fresh {
				flat[key] = sec
			}
		}
	}
}

// loadLayout mirrors vodserved's layout resolution so both tools agree on
// what is being served.
func loadLayout(scenarioPath, planPath string) (*core.Problem, *core.Layout, error) {
	if planPath != "" {
		f, err := os.Open(planPath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		plan, err := config.LoadPlan(f)
		if err != nil {
			return nil, nil, err
		}
		return plan.Layout()
	}
	s := config.Paper()
	if scenarioPath != "" {
		f, err := os.Open(scenarioPath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		if s, err = config.Load(f); err != nil {
			return nil, nil, err
		}
	}
	p, layout, _, err := vodcluster.Pipeline(s)
	return p, layout, err
}
