package main

import (
	"encoding/json"
	"testing"
)

// TestPreserveSections: refreshing BENCH_serve.json must carry forward the
// sections other tools merged into it (the scale and http gates), without
// ever overwriting a section this run produced, and must tolerate a missing
// or corrupt previous file.
func TestPreserveSections(t *testing.T) {
	prev := []byte(`{
		"decisions_per_sec": 8081.8,
		"scaling": {"shards": 4, "levels": [{"gomaxprocs": 1}]},
		"http": {"listeners": 2, "decisions_per_sec": 200000}
	}`)

	flat := map[string]json.RawMessage{
		"decisions_per_sec": json.RawMessage(`9000`),
	}
	preserveSections(flat, prev)
	for _, key := range []string{"scaling", "http"} {
		if _, ok := flat[key]; !ok {
			t.Fatalf("%s section from the previous record was dropped", key)
		}
	}
	var sc struct {
		Shards int `json:"shards"`
	}
	if err := json.Unmarshal(flat["scaling"], &sc); err != nil || sc.Shards != 4 {
		t.Fatalf("scaling section mangled: %s (err %v)", flat["scaling"], err)
	}
	if string(flat["decisions_per_sec"]) != "9000" {
		t.Fatalf("fresh flat key overwritten: %s", flat["decisions_per_sec"])
	}

	// A section written by THIS run wins over the previous file's copy.
	flat = map[string]json.RawMessage{
		"http": json.RawMessage(`{"listeners": 8}`),
	}
	preserveSections(flat, prev)
	var hb struct {
		Listeners int `json:"listeners"`
	}
	if err := json.Unmarshal(flat["http"], &hb); err != nil || hb.Listeners != 8 {
		t.Fatalf("fresh http section overwritten by the stale one: %s", flat["http"])
	}

	// Corrupt previous content is ignored rather than fatal.
	flat = map[string]json.RawMessage{"x": json.RawMessage(`1`)}
	preserveSections(flat, []byte(`not json`))
	if len(flat) != 1 {
		t.Fatalf("corrupt previous record changed the fresh region: %v", flat)
	}

	// Previous records without the sections add nothing.
	flat = map[string]json.RawMessage{"x": json.RawMessage(`1`)}
	preserveSections(flat, []byte(`{"decisions_per_sec": 1}`))
	if _, ok := flat["scaling"]; ok {
		t.Fatal("scaling section invented from nowhere")
	}
}
