// Command vodplace computes a replication and placement plan for a VoD
// cluster and prints it: the replica count per video, the per-server
// placement, expected loads, the load-imbalance degree under both of the
// paper's definitions, and the Theorem 4.2 bound.
//
// Usage:
//
//	vodplace [-servers 8] [-videos 100] [-theta 0.75] [-degree 1.2]
//	         [-replicator zipf] [-placer slf] [-verbose]
package main

import (
	"flag"
	"fmt"
	"os"

	"vodcluster"
	"vodcluster/internal/analytic"
	"vodcluster/internal/config"
	"vodcluster/internal/core"
	"vodcluster/internal/place"
	"vodcluster/internal/replicate"
	"vodcluster/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vodplace:", err)
		os.Exit(1)
	}
}

func run() error {
	s := config.Paper()
	flag.IntVar(&s.Servers, "servers", s.Servers, "number of servers N")
	flag.IntVar(&s.Videos, "videos", s.Videos, "number of videos M")
	flag.Float64Var(&s.Theta, "theta", s.Theta, "Zipf popularity skew θ")
	flag.Float64Var(&s.BitRateMbps, "bitrate", s.BitRateMbps, "encoding bit rate (Mb/s)")
	flag.Float64Var(&s.DurationMin, "duration", s.DurationMin, "video duration (minutes)")
	flag.Float64Var(&s.BandwidthGbps, "bandwidth", s.BandwidthGbps, "outgoing bandwidth per server (Gb/s)")
	flag.Float64Var(&s.StorageGB, "storage", s.StorageGB, "storage per server (GB); 0 derives from degree")
	flag.Float64Var(&s.LambdaPerMin, "lambda", s.LambdaPerMin, "peak arrival rate (requests/minute)")
	flag.Float64Var(&s.Degree, "degree", s.Degree, "target replication degree")
	flag.StringVar(&s.Replicator, "replicator", s.Replicator, "replication algorithm: adams|zipf|classification|uniform")
	flag.StringVar(&s.Placer, "placer", s.Placer, "placement algorithm: slf|roundrobin|greedy|random|wslf|bsr")
	verbose := flag.Bool("verbose", false, "print the full per-video placement")
	out := flag.String("out", "", "write the computed plan as JSON to this file (replayable by vodsim -plan)")
	flag.Parse()

	p, err := s.Problem()
	if err != nil {
		return err
	}
	r, err := vodcluster.ReplicatorByName(s.Replicator)
	if err != nil {
		return err
	}
	pl, err := vodcluster.PlacerByName(s.Placer)
	if err != nil {
		return err
	}
	layout, err := vodcluster.BuildLayout(p, r, pl, s.Degree)
	if err != nil {
		return err
	}

	sat, _ := p.SaturationArrivalRate()
	if p.Homogeneous() {
		capPerServer, _ := p.ReplicaCapacityPerServer()
		fmt.Printf("cluster: N=%d servers, %.1f GB storage (%d replicas) and %.2f Gb/s out each\n",
			p.N(), p.StorageOf(0)/core.GB, capPerServer, p.BandwidthOf(0)/core.Gbps)
	} else {
		fmt.Printf("cluster: N=%d heterogeneous servers, %.1f GB storage and %.2f Gb/s out in total\n",
			p.N(), p.TotalStorage()/core.GB, p.TotalBandwidth()/core.Gbps)
	}
	fmt.Printf("catalog: M=%d videos, θ=%.3g, %.1f Mb/s, %.0f min (%.2f GB each)\n",
		p.M(), s.Theta, s.BitRateMbps, s.DurationMin, p.Catalog[0].SizeBytes()/core.GB)
	fmt.Printf("workload: peak λ=%.3g req/min for %.0f min (saturation at %.3g req/min)\n\n",
		s.LambdaPerMin, s.DurationMin, sat*core.Minute)

	fmt.Printf("plan: %s replication + %s placement, degree %.3f (%d replicas)\n",
		r.Name(), pl.Name(), layout.ReplicationDegree(), layout.TotalReplicas())
	fmt.Printf("max per-replica weight (Eq. 8 objective): %.2f expected requests\n",
		replicate.MaxWeight(p, layout.Replicas))
	loads := layout.ServerLoads(p)
	fmt.Printf("load imbalance: Eq.2 L=%.4f  Eq.3 L=%.4f (Theorem 4.2 bound for slf: %.4f)\n",
		core.ImbalanceMax(loads), core.ImbalanceStd(loads), place.GeneralBound(p, layout.Replicas))
	worst, ok := layout.BandwidthFeasible(p)
	fmt.Printf("expected peak bandwidth: worst server at %.1f%% of capacity (feasible: %v)\n", 100*worst, ok)
	if pred, err := analytic.ReplicatedBlocking(p, layout); err == nil {
		pooled, _ := analytic.PooledBlocking(p)
		fmt.Printf("predicted steady-state rejection (Erlang-B): %.3f%% (perfect pooling would give %.3f%%)\n", 100*pred, 100*pooled)
	}
	fmt.Println()

	srv := report.NewTable("server", "replicas", "storage GB", "expected load", "expected Gb/s")
	used := layout.ServerStorageUsed(p)
	demand := layout.ServerBandwidthDemand(p)
	perServer := make([]int, p.N())
	for _, servers := range layout.Servers {
		for _, sv := range servers {
			perServer[sv]++
		}
	}
	for sv := 0; sv < p.N(); sv++ {
		srv.AddRowf(sv, perServer[sv], used[sv]/core.GB, loads[sv], demand[sv]/core.Gbps)
	}
	if err := srv.Fprint(os.Stdout); err != nil {
		return err
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := config.NewPlan(s, layout).Save(f); err != nil {
			return err
		}
		fmt.Printf("\nplan written to %s\n", *out)
	}

	if *verbose {
		fmt.Println()
		tv := report.NewTable("video", "popularity", "replicas", "weight", "servers")
		w := layout.Weights(p)
		for v := 0; v < p.M(); v++ {
			tv.AddRowf(v, p.Catalog[v].Popularity, layout.Replicas[v], w[v], fmt.Sprint(layout.Servers[v]))
		}
		if err := tv.Fprint(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
