// Command vodtrace generates and inspects synthetic request traces.
//
// Generate a trace:
//
//	vodtrace -videos 100 -theta 0.75 -lambda 40 -duration 90 -seed 7 -out trace.json
//
// Inspect a trace:
//
//	vodtrace -in trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"vodcluster/internal/report"
	"vodcluster/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vodtrace:", err)
		os.Exit(1)
	}
}

func run() error {
	videos := flag.Int("videos", 100, "number of videos M")
	theta := flag.Float64("theta", 0.75, "Zipf popularity skew θ")
	lambda := flag.Float64("lambda", 40, "arrival rate (requests/minute)")
	durationMin := flag.Float64("duration", 90, "trace duration (minutes)")
	seed := flag.Int64("seed", 1, "random seed")
	bursty := flag.Bool("bursty", false, "use a 2-state MMPP (rates 0.5λ and 2λ, 10-minute sojourns)")
	out := flag.String("out", "", "output file (default stdout)")
	in := flag.String("in", "", "inspect an existing trace instead of generating")
	top := flag.Int("top", 10, "when inspecting, how many hottest videos to list")
	flag.Parse()

	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err := workload.Load(f)
		if err != nil {
			return err
		}
		return inspect(tr, *top)
	}

	var arrivals workload.ArrivalProcess = workload.NewPoissonPerMinute(*lambda)
	if *bursty {
		arrivals = &workload.MMPP{
			Lambda1: 0.5 * *lambda / 60, Lambda2: 2 * *lambda / 60,
			Sojourn1: 600, Sojourn2: 600,
		}
	}
	gen, err := workload.NewGenerator(arrivals, *videos, *theta)
	if err != nil {
		return err
	}
	tr := gen.Generate(*durationMin*60, *seed)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := tr.Save(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "vodtrace: wrote %d requests over %.0f min\n", len(tr.Requests), *durationMin)
	return nil
}

func inspect(tr *workload.Trace, top int) error {
	fmt.Printf("trace: %d requests, %d videos, θ=%.3g, process=%s, duration=%.0f s, seed=%d\n",
		len(tr.Requests), tr.Meta.Videos, tr.Meta.Theta, tr.Meta.Process, tr.Meta.Duration, tr.Meta.Seed)
	if len(tr.Requests) == 0 {
		return nil
	}
	rate := float64(len(tr.Requests)) / tr.Meta.Duration * 60
	fmt.Printf("empirical arrival rate: %.2f requests/minute\n", rate)
	if theta, err := workload.EstimateTheta(tr.VideoCounts()); err == nil {
		fmt.Printf("estimated Zipf skew θ: %.3f (trace was generated with %.3f)\n", theta, tr.Meta.Theta)
	}
	fmt.Println()

	counts := tr.VideoCounts()
	type vc struct{ v, n int }
	order := make([]vc, len(counts))
	for v, n := range counts {
		order[v] = vc{v, n}
	}
	for i := 0; i < len(order); i++ { // selection sort of the top-k prefix
		best := i
		for j := i + 1; j < len(order); j++ {
			if order[j].n > order[best].n {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
		if i+1 >= top {
			break
		}
	}
	t := report.NewTable("rank", "video", "requests", "share %")
	for i := 0; i < top && i < len(order); i++ {
		t.AddRowf(i+1, order[i].v, order[i].n, 100*float64(order[i].n)/float64(len(tr.Requests)))
	}
	return t.Fprint(os.Stdout)
}
