package main

import (
	"testing"
	"time"

	"vodcluster/internal/obs"
)

// TestBenchFig4ProducesMetrics: the sweep benchmark yields its two
// report-only metrics (wall clock drifts too much between CI invocations to
// gate — see the benchFig4 doc comment) with one sample per run and a
// positive events/s rate.
func TestBenchFig4ProducesMetrics(t *testing.T) {
	ms, err := benchFig4(2, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("got %d metrics, want 2", len(ms))
	}
	for _, m := range ms {
		if m.Gate || len(m.Samples) != 2 || m.Mean <= 0 {
			t.Fatalf("metric %+v: want report-only, 2 samples, positive mean", m)
		}
	}
	rec := &obs.BenchRecord{Manifest: obs.NewManifest(), Benchmarks: ms}
	if _, failed := obs.CompareBench(rec, rec, 0.10); failed {
		t.Fatal("fig4 record failed self-comparison")
	}
}

// TestServeGateCatchesSlowedAdmitPath is the acceptance check for the
// whole perf gate: an unchanged serving path passes the 10% comparison,
// and deliberately slowing every admission decision (the AdmitDelay test
// harness) makes the gate fail on both throughput and latency.
func TestServeGateCatchesSlowedAdmitPath(t *testing.T) {
	if testing.Short() {
		t.Skip("replays live bursts; skipped in -short mode")
	}
	// The offered rate must stay below the machine's decision capacity even
	// when the rest of the test suite is compiling and running alongside
	// (observed floor on a contended 1-CPU host: ~1.1k decisions/s), while
	// the injected delay's throughput ceiling — 256 pooled connections /
	// AdmitDelay — must sit below the offered rate. 800 req/s against a
	// 500 ms delay (cap: 512/s) keeps both regressions visible under any
	// realistic contention; the CLI default of 8000 req/s is only for
	// dedicated benchmark runs.
	const (
		runs     = 2
		seed     = 42
		rate     = 800
		burst    = 0.5
		compress = 3600
	)
	base, err := benchServe(runs, seed, rate, burst, compress, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	baseRec := &obs.BenchRecord{Manifest: obs.NewManifest(), Benchmarks: base}
	if deltas, failed := obs.CompareBench(baseRec, baseRec, 0.10); failed {
		t.Fatalf("unchanged serving path failed the gate: %+v", deltas)
	}

	slow, err := benchServe(1, seed, rate, burst, compress, 500*time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	slowRec := &obs.BenchRecord{Manifest: obs.NewManifest(), Benchmarks: slow}
	deltas, failed := obs.CompareBench(baseRec, slowRec, 0.10)
	if !failed {
		t.Fatalf("50ms admit delay passed the 10%% gate: %+v", deltas)
	}
	regressed := map[string]bool{}
	for _, d := range deltas {
		if d.Regressed {
			regressed[d.Name] = true
		}
	}
	// The delay caps 256 pooled connections at 512 decisions/s against an
	// 800 req/s offered load, so throughput must drop; and every decision
	// now takes ≥500ms, so the p50 must blow through any noise margin.
	if !regressed["serve_decisions_per_sec"] {
		t.Fatalf("throughput did not regress: %+v", deltas)
	}
	if !regressed["serve_latency_p50_ms"] {
		t.Fatalf("median latency did not regress: %+v", deltas)
	}
}
