// Command vodperf is the performance-regression harness: it runs the
// canonical benchmarks several times, writes a manifest-stamped JSON record
// with per-run samples, and compares two records with a noise-adjusted
// tolerance — the gate CI fails merges on.
//
//	vodperf -out BENCH_perf.json -runs 5            # measure everything
//	vodperf -bench serve -runs 3 -out serve.json    # just the serving path
//	vodperf -compare old.json new.json -tolerance 0.10
//
// Four benchmarks exist: "fig4" times the canonical Figure-4 quick sweep
// (3 degrees × 3 arrival rates × 3 replications on the internal/exp
// harness) and derives simulator events/second from the deterministic
// engine event count; "serve" replays an open-loop burst against an
// in-process daemon (the serve-smoke workload) and records admission
// throughput and latency percentiles; "anneal" runs the §4.3
// scalable-bit-rate annealer on the vodbench instance and records proposal
// throughput, guarding the delta-evaluation fast path against regressions;
// "scale" sweeps the sharded dispatch engine (DESIGN.md §15) across
// GOMAXPROCS ∈ {1, 4, 16} with closed-loop in-process workers and records
// decisions/s per core count plus parallel efficiency. "scale" is not part
// of "all": it re-pins GOMAXPROCS mid-process, which would perturb the
// timing of the other benchmarks.
//
// The scale sweep enforces -min-speedup (default 2.5× at GOMAXPROCS=4 over
// 1) when the host actually has ≥4 CPUs; levels above the host's CPU count
// are recorded hw_capped and never gate — a 1-core VM cannot make an honest
// multi-core claim. -merge folds the sweep into an existing flat
// BENCH_serve.json as its `scaling` section. Every recorded metric is
// stamped with the GOMAXPROCS it was measured at, and -compare refuses
// cross-core-count comparisons instead of silently passing.
//
// A fifth benchmark, "http" (also never part of "all"), measures the
// sharded HTTP ingress (DESIGN.md §16): a fresh daemon fronted by
// -listeners SO_REUSEPORT accept loops, driven closed-loop by workers on
// persistent fast connections issuing POST /open/batch at -batch videos per
// round trip (http_decisions_per_sec, gated) and single POST /open requests
// (http_single_decisions_per_sec, report-only). -min-http-mult with
// -http-baseline enforces the ingress contract in absolute terms: batched
// HTTP admission throughput must be at least that multiple of the
// baseline's open-loop serve_decisions_per_sec, measured at the same core
// count. -merge folds the result into a flat BENCH_serve.json as its `http`
// section.
//
// -compare also accepts the flat single-run records the smoke targets
// write (BENCH_serve.json, BENCH_sweep.json); those gate only on
// throughput-type metrics, with a fixed single-sample noise allowance,
// because one run carries no noise estimate for tail latencies. Exit
// status 1 means a gated metric regressed beyond tolerance + noise margin
// (or disappeared from the new record).
//
// -admit-delay artificially slows every admission decision of the serve
// benchmark; it exists so tests can prove the gate catches a genuine
// slowdown.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vodcluster"
	"vodcluster/internal/anneal"
	"vodcluster/internal/config"
	"vodcluster/internal/core"
	"vodcluster/internal/exp"
	"vodcluster/internal/faults"
	"vodcluster/internal/obs"
	"vodcluster/internal/report"
	"vodcluster/internal/serve"
	"vodcluster/internal/sim"
	"vodcluster/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vodperf:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", "BENCH_perf.json", "write the benchmark record to this file")
	runs := flag.Int("runs", 5, "repetitions per benchmark; more runs tighten the noise margin")
	bench := flag.String("bench", "all", "which benchmarks to run: all | fig4 | serve | anneal | scale | http (scale and http are never part of all)")
	seed := flag.Int64("seed", 42, "seed for the simulated sweep and the replay trace")
	rate := flag.Float64("rate", 8000, "serve benchmark: admission decisions per wall second")
	burst := flag.Float64("burst", 1, "serve benchmark: burst length in wall seconds")
	compress := flag.Float64("compress", 3600, "serve benchmark: time-compression factor")
	workers := flag.Int("workers", 1, "fig4 benchmark: parallel simulations; 1 (sequential) has the least timing noise")
	admitDelay := flag.Duration("admit-delay", 0, "serve benchmark: artificial delay per admission decision (regression-test harness)")
	traceEvents := flag.Int("trace", 0, "serve benchmark: enable session tracing with this ring capacity — for measuring tracer overhead (0 = off)")
	compare := flag.Bool("compare", false, "compare two records: vodperf -compare OLD NEW")
	tolerance := flag.Float64("tolerance", 0.10, "compare: allowed relative worsening of a gated metric before the noise margin")
	metricsPrefix := flag.String("metrics", "", "compare: only baseline metrics with this name prefix (e.g. scale_)")
	excludePrefix := flag.String("exclude", "", "compare: drop baseline metrics with these comma-separated name prefixes (e.g. scale_,http_)")
	scaleMax := flag.Int("scale-max", 16, "scale benchmark: highest GOMAXPROCS level of the sweep")
	shardsFlag := flag.Int("shards", 0, "scale/http benchmark: dispatch shards of the in-process daemon (0 = one per backend)")
	minSpeedup := flag.Float64("min-speedup", 2.5, "scale benchmark: required decisions/s speedup at GOMAXPROCS=4 over 1 when the host has ≥4 CPUs (0 disables)")
	mergePath := flag.String("merge", "", "scale/http benchmark: also fold the result into this flat BENCH_serve.json as its scaling/http section")
	listenersFlag := flag.Int("listeners", 0, "http benchmark: sharded ingress accept loops (0 = GOMAXPROCS)")
	batchFlag := flag.Int("batch", 256, "http benchmark: videos per POST /open/batch round trip")
	minHTTPMult := flag.Float64("min-http-mult", 0, "http benchmark: required multiple of the baseline's serve_decisions_per_sec (0 disables; needs -http-baseline)")
	httpBaseline := flag.String("http-baseline", "", "http benchmark: flat BENCH_serve.json whose serve_decisions_per_sec anchors -min-http-mult")
	flag.Parse()

	if *compare {
		// Allow `vodperf -compare OLD NEW -tolerance 0.10`: the flag package
		// stops at the first positional argument, so flags trailing the two
		// paths are parsed in a second pass.
		args := flag.Args()
		if len(args) < 2 {
			return fmt.Errorf("-compare needs two record paths: vodperf -compare OLD NEW")
		}
		oldPath, newPath := args[0], args[1]
		if len(args) > 2 {
			if err := flag.CommandLine.Parse(args[2:]); err != nil {
				return err
			}
			if flag.NArg() > 0 {
				return fmt.Errorf("-compare takes exactly two record paths; unexpected %q", flag.Args())
			}
		}
		return runCompare(oldPath, newPath, *tolerance, *metricsPrefix, *excludePrefix)
	}
	if *runs < 1 {
		return fmt.Errorf("-runs must be at least 1, got %d", *runs)
	}
	switch *bench {
	case "all", "fig4", "serve", "anneal", "scale", "http":
	default:
		return fmt.Errorf("-bench must be all, fig4, serve, anneal, scale, or http, got %q", *bench)
	}

	rec := &obs.BenchRecord{Manifest: obs.NewManifest()}
	rec.Manifest.Seed = *seed
	rec.Manifest.Flags = map[string]string{
		"bench":   *bench,
		"runs":    fmt.Sprint(*runs),
		"rate":    fmt.Sprint(*rate),
		"burst":   fmt.Sprint(*burst),
		"workers": fmt.Sprint(*workers),
	}
	if *admitDelay > 0 {
		rec.Manifest.Flags["admit-delay"] = admitDelay.String()
	}
	if *traceEvents > 0 {
		rec.Manifest.Flags["trace"] = fmt.Sprint(*traceEvents)
	}

	if *bench == "all" || *bench == "fig4" {
		ms, err := benchFig4(*runs, *seed, *workers)
		if err != nil {
			return err
		}
		rec.Benchmarks = append(rec.Benchmarks, ms...)
	}
	if *bench == "all" || *bench == "serve" {
		ms, err := benchServe(*runs, *seed, *rate, *burst, *compress, *admitDelay, *traceEvents)
		if err != nil {
			return err
		}
		rec.Benchmarks = append(rec.Benchmarks, ms...)
	}
	if *bench == "all" || *bench == "anneal" {
		ms, err := benchAnneal(*runs, *seed)
		if err != nil {
			return err
		}
		rec.Benchmarks = append(rec.Benchmarks, ms...)
	}
	if *bench == "scale" {
		ms, sc, err := benchScale(*runs, *seed, *scaleMax, *shardsFlag, *minSpeedup)
		if err != nil {
			return err
		}
		rec.Benchmarks = append(rec.Benchmarks, ms...)
		if *mergePath != "" {
			if err := mergeSection(*mergePath, "scaling", sc); err != nil {
				return err
			}
			fmt.Printf("scaling section merged into %s\n", *mergePath)
		}
	}
	if *bench == "http" {
		ms, hb, err := benchHTTP(*runs, *seed, *listenersFlag, *batchFlag, *shardsFlag, *minHTTPMult, *httpBaseline)
		if err != nil {
			return err
		}
		rec.Benchmarks = append(rec.Benchmarks, ms...)
		if *mergePath != "" {
			if err := mergeSection(*mergePath, "http", hb); err != nil {
				return err
			}
			fmt.Printf("http section merged into %s\n", *mergePath)
		}
	}

	// Stamp the core count each metric was measured at; the scale sweep
	// stamps its own per-level values, which the zero check preserves.
	for i := range rec.Benchmarks {
		if rec.Benchmarks[i].Gomaxprocs == 0 {
			rec.Benchmarks[i].Gomaxprocs = runtime.GOMAXPROCS(0)
		}
	}

	printRecord(rec)
	if err := rec.WriteFile(*out); err != nil {
		return err
	}
	fmt.Printf("\nbenchmark record (%d runs/bench) written to %s\n", *runs, *out)
	return nil
}

// benchFig4 times the canonical Figure-4 quick sweep — the same grid
// BenchmarkFig4Sweep and the CI bench-smoke step run: 3 replication degrees
// × λ {16,32,40} req/min × 3 replications. Simulator throughput is derived
// as the grid's deterministic engine event count over the wall clock, so the
// two metrics move together unless the event mix itself changed. Both are
// report-only: pure wall-clock metrics drift up to ~30% between invocations
// on shared CI runners (measured here: 56–89ms for the same grid), which no
// tolerance can gate without flaking. The serve benchmark's decisions/s —
// bounded by offered load, stable to <0.1% across invocations, yet halved by
// a 50ms admit delay — carries the regression gate instead.
func benchFig4(runs int, seed int64, workers int) ([]obs.BenchMetric, error) {
	series := make([]exp.Series, 0, 3)
	for _, degree := range []float64{1.0, 1.4, 2.0} {
		s := config.Paper()
		s.Degree = degree
		p, layout, sched, err := vodcluster.Pipeline(s)
		if err != nil {
			return nil, err
		}
		series = append(series, exp.Series{
			Name: fmt.Sprintf("deg %.1f", degree),
			Config: func(lam float64) (sim.Config, error) {
				q := p.Clone()
				q.ArrivalRate = lam / core.Minute
				return sim.Config{Problem: q, Layout: layout, NewScheduler: sched}, nil
			},
		})
	}

	var events int
	secs, err := exp.Timed(runs, func(int) error {
		sweep := &exp.Sweep{
			Xs: []float64{16, 32, 40}, Series: series,
			Runs: 3, Seed: seed, Workers: workers,
		}
		grid, err := sweep.Run()
		if err != nil {
			return err
		}
		events = 0
		for _, pts := range grid {
			for _, pt := range pts {
				for _, r := range pt.Results {
					events += r.Events
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	eps := make([]float64, len(secs))
	for i, s := range secs {
		eps[i] = float64(events) / s
	}
	return []obs.BenchMetric{
		obs.NewBenchMetric("fig4_wall_sec", "s", false, false, secs),
		obs.NewBenchMetric("fig4_events_per_sec", "events/s", true, false, eps),
	}, nil
}

// benchAnneal times the §4.3 scalable-bit-rate annealer on the same instance
// vodbench -fig sa optimizes: the paper cluster with 50 GB/server and the
// {2, 4, 6, 8} Mb/s rate set. Proposal throughput gates: it is CPU-bound,
// deterministic in work per step, and the direct measure of the
// delta-evaluation fast path — a regression to clone-and-rescan evaluation
// drops it by more than an order of magnitude. The final objective is
// recorded report-only as a sanity check that speed never bought a worse
// solution.
func benchAnneal(runs int, seed int64) ([]obs.BenchMetric, error) {
	s := config.Paper()
	s.StorageGB = 50 // fixed storage: the annealer chooses rates vs replicas
	p, err := s.Problem()
	if err != nil {
		return nil, err
	}
	bp := &anneal.BitRateProblem{
		P:       p,
		RateSet: []float64{2 * core.Mbps, 4 * core.Mbps, 6 * core.Mbps, 8 * core.Mbps},
	}
	init, err := bp.InitialSolution()
	if err != nil {
		return nil, err
	}
	const steps = 200_000
	var sps, objs []float64
	for i := 0; i < runs; i++ {
		opts := anneal.DefaultOptions()
		opts.Seed = seed
		opts.MaxSteps = steps
		opts.PlateauSteps = 2000 // stretch the schedule so MaxSteps terminates
		start := time.Now()
		res, err := anneal.Minimize[*anneal.BitRateLayout](bp, init, opts)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start).Seconds()
		if res.Steps != steps {
			return nil, fmt.Errorf("anneal benchmark ran %d steps, want %d", res.Steps, steps)
		}
		e := bp.Evaluate(res.Best)
		if !e.Feasible() {
			return nil, fmt.Errorf("anneal benchmark ended infeasible: %+v", e)
		}
		sps = append(sps, float64(res.Steps)/elapsed)
		objs = append(objs, e.Objective)
	}
	return []obs.BenchMetric{
		obs.NewBenchMetric("anneal_steps_per_sec", "proposals/s", true, true, sps),
		obs.NewBenchMetric("anneal_objective", "", true, false, objs),
	}, nil
}

// benchServe replays the serve-smoke burst against a fresh in-process
// daemon per repetition. Throughput and the p50 both gate: throughput
// catches stalls big enough to saturate the client's connection pool,
// while the p50 — with a noise margin measured across repetitions — catches
// per-decision slowdowns that open-loop dispatch would otherwise hide.
// traceEvents > 0 runs each daemon with a session tracer of that capacity,
// so the tracer's own overhead is measurable with the same gate.
func benchServe(runs int, seed int64, rate, burst, compress float64, admitDelay time.Duration, traceEvents int) ([]obs.BenchMetric, error) {
	p, layout, _, err := vodcluster.Pipeline(config.Paper())
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(workload.Poisson{Lambda: rate / compress}, p.M(), estimateThetaOf(p))
	if err != nil {
		return nil, err
	}
	// One trace for every repetition: run-to-run deltas then measure the
	// server, not the workload.
	tr := gen.Generate(burst*compress, seed)
	if len(tr.Requests) == 0 {
		return nil, fmt.Errorf("serve benchmark trace is empty; raise -rate or -burst")
	}

	var dps, p50, p99, lmax []float64
	for i := 0; i < runs; i++ {
		rep, err := replayOnce(p, layout, compress, admitDelay, traceEvents, tr)
		if err != nil {
			return nil, fmt.Errorf("serve run %d: %w", i, err)
		}
		dps = append(dps, rep.DecisionsPerSec())
		p50 = append(p50, rep.LatencyQuantile(0.50).Seconds()*1e3)
		p99 = append(p99, rep.LatencyQuantile(0.99).Seconds()*1e3)
		lmax = append(lmax, rep.LatencyQuantile(1).Seconds()*1e3)
	}
	return []obs.BenchMetric{
		obs.NewBenchMetric("serve_decisions_per_sec", "decisions/s", true, true, dps),
		obs.NewBenchMetric("serve_latency_p50_ms", "ms", false, true, p50),
		obs.NewBenchMetric("serve_latency_p99_ms", "ms", false, true, p99),
		obs.NewBenchMetric("serve_latency_max_ms", "ms", false, false, lmax),
	}, nil
}

// replayOnce stands up a fresh loopback daemon, replays the trace open-loop,
// and tears the daemon down. The daemon runs with the health-check loop
// attached and probing aggressively (100 ms cadence against an all-healthy
// injector), so the gated serve_decisions_per_sec covers the failure
// machinery's steady-state cost on the admission hot path — the state loads,
// probe bookkeeping, and retry branch a production daemon pays.
func replayOnce(p *core.Problem, layout *core.Layout, compress float64, admitDelay time.Duration, traceEvents int, tr *workload.Trace) (*serve.Report, error) {
	var tracer *obs.Tracer
	if traceEvents > 0 {
		tracer = obs.NewTracer(traceEvents)
	}
	srv, err := serve.New(p, layout, serve.Config{Compress: compress, AdmitDelay: admitDelay, Tracer: tracer})
	if err != nil {
		return nil, err
	}
	in := faults.NewInjector()
	srv.AttachInjector(in)
	hc := serve.NewHealthChecker(srv, in, serve.HealthConfig{Interval: 100 * time.Millisecond})
	hc.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer func() { srv.Shutdown(); _ = hs.Close() }()

	client := serve.NewClient("http://" + ln.Addr().String())
	rep, err := client.Replay(context.Background(), tr, compress)
	if err != nil {
		return nil, err
	}
	if rep.Errors > 0 {
		return nil, fmt.Errorf("%d transport errors; first: %v", rep.Errors, rep.FirstError)
	}
	if rep.Accepted == 0 {
		return nil, fmt.Errorf("no sessions admitted; the daemon rejected the whole burst")
	}
	return rep, nil
}

// scaleLevels are the GOMAXPROCS points of the scaling sweep; -scale-max
// truncates the list on hosts (or CI matrix legs) that only validate a
// prefix.
var scaleLevels = []int{1, 4, 16}

// Scale-sweep shape: each repetition measures closed-loop admission
// throughput over a fixed wall window, with every worker keeping a bounded
// ring of open sessions (closing the oldest as new ones are admitted) so the
// daemon sits at a steady occupancy instead of filling to capacity.
const (
	scaleWindow = 300 * time.Millisecond
	scaleRing   = 32
)

// benchScale sweeps the sharded dispatch engine across GOMAXPROCS levels and
// derives speedup and parallel efficiency against the 1-core level. Unlike
// the serve benchmark — open-loop HTTP, bounded by the offered rate — this
// drives Server.Open directly from closed-loop workers, so the measured
// decisions/s is the engine's own ceiling and can actually rise with cores.
// Levels above the host's CPU count still run (the numbers are reported) but
// are marked hw_capped and never gate: a 1-core VM cannot make an honest
// 4-core claim. When the host does have ≥4 CPUs, minSpeedup > 0 enforces the
// scaling contract right here, independent of any baseline record.
func benchScale(runs int, seed int64, scaleMax, shards int, minSpeedup float64) ([]obs.BenchMetric, obs.Scaling, error) {
	p, layout, _, err := vodcluster.Pipeline(config.Paper())
	if err != nil {
		return nil, obs.Scaling{}, err
	}
	if shards <= 0 {
		shards = p.N()
	}
	// One Zipf-popular request stream shared by every level and repetition:
	// run-to-run deltas then measure the engine, not the workload.
	gen, err := workload.NewGenerator(workload.Poisson{Lambda: 1000}, p.M(), estimateThetaOf(p))
	if err != nil {
		return nil, obs.Scaling{}, err
	}
	tr := gen.Generate(200, seed)
	if len(tr.Requests) == 0 {
		return nil, obs.Scaling{}, fmt.Errorf("scale benchmark trace is empty")
	}
	vids := make([]int, len(tr.Requests))
	for i, r := range tr.Requests {
		vids[i] = r.Video
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	sc := obs.Scaling{Shards: shards}
	var ms []obs.BenchMetric
	base := 0.0
	for _, lvl := range scaleLevels {
		if lvl > scaleMax {
			continue
		}
		capped := lvl > runtime.NumCPU()
		runtime.GOMAXPROCS(lvl)
		var dps []float64
		for r := 0; r < runs; r++ {
			d, err := scaleOnce(p, layout, shards, lvl, vids)
			if err != nil {
				return nil, obs.Scaling{}, fmt.Errorf("scale g%d run %d: %w", lvl, r, err)
			}
			dps = append(dps, d)
		}
		m := obs.NewBenchMetric(fmt.Sprintf("scale_decisions_per_sec_g%d", lvl),
			"decisions/s", true, !capped, dps)
		m.Gomaxprocs = lvl
		if base == 0 {
			base = m.Mean
		}
		speedup := 1.0
		if base > 0 {
			speedup = m.Mean / base
		}
		eff := speedup / float64(lvl)
		em := obs.NewBenchMetric(fmt.Sprintf("scale_efficiency_g%d", lvl), "", true, false, []float64{eff})
		em.Gomaxprocs = lvl
		ms = append(ms, m, em)
		sc.Levels = append(sc.Levels, obs.ScalingLevel{
			Gomaxprocs: lvl, DecisionsPerSec: m.Mean,
			Speedup: speedup, Efficiency: eff, HwCapped: capped,
		})
	}
	runtime.GOMAXPROCS(prev)

	if minSpeedup > 0 {
		var l4 *obs.ScalingLevel
		for i := range sc.Levels {
			if sc.Levels[i].Gomaxprocs == 4 {
				l4 = &sc.Levels[i]
			}
		}
		switch {
		case l4 == nil:
			fmt.Printf("scale: sweep stops below GOMAXPROCS=4 (-scale-max %d); speedup gate not applicable\n", scaleMax)
		case l4.HwCapped:
			fmt.Printf("scale: host has %d CPUs; the ≥%.3g× speedup gate at GOMAXPROCS=4 is recorded hw_capped, not enforced\n",
				runtime.NumCPU(), minSpeedup)
		case l4.Speedup < minSpeedup:
			return nil, obs.Scaling{}, fmt.Errorf("scale: %.2f× decisions/s at GOMAXPROCS=4 over 1, below the required %.3g×",
				l4.Speedup, minSpeedup)
		default:
			fmt.Printf("scale: %.2f× decisions/s at GOMAXPROCS=4 over 1 (required ≥%.3g×)\n", l4.Speedup, minSpeedup)
		}
	}
	return ms, sc, nil
}

// scaleOnce measures one closed-loop repetition: 4×GOMAXPROCS workers call
// Server.Open in a tight loop for the measurement window, each recycling its
// oldest session once its ring fills. Decisions/s counts accepts and rejects
// alike — both are settled admission decisions.
func scaleOnce(p *core.Problem, layout *core.Layout, shards, lvl int, vids []int) (float64, error) {
	srv, err := serve.New(p, layout, serve.Config{Compress: 3600, Shards: shards})
	if err != nil {
		return 0, err
	}
	defer srv.Shutdown()
	workers := 4 * lvl
	counts := make([]int64, workers)
	errs := make([]error, workers)
	var stop atomic.Bool
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var ring [scaleRing]int64
			rh, rn := 0, 0
			i := w // stride the shared stream so workers diverge immediately
			n := int64(0)
			for !stop.Load() {
				v := vids[i%len(vids)]
				i += workers
				info, outcome, err := srv.Open(v)
				if err != nil {
					errs[w] = err
					return
				}
				n++
				if outcome == serve.OutcomeAccepted {
					if rn == scaleRing {
						srv.Close(ring[rh])
						ring[rh] = info.ID
						rh = (rh + 1) % scaleRing
					} else {
						ring[(rh+rn)%scaleRing] = info.ID
						rn++
					}
				}
			}
			counts[w] = n
			for ; rn > 0; rn-- {
				srv.Close(ring[rh])
				rh = (rh + 1) % scaleRing
			}
		}(w)
	}
	time.Sleep(scaleWindow)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	total := int64(0)
	for w := range counts {
		if errs[w] != nil {
			return 0, errs[w]
		}
		total += counts[w]
	}
	if total == 0 {
		return 0, fmt.Errorf("no admission decisions settled in the %s window", scaleWindow)
	}
	return float64(total) / elapsed, nil
}

// mergeSection folds a benchmark section (`scaling`, `http`) into a flat
// benchmark record (the BENCH_serve.json shape), leaving every other key as
// written by vodload.
func mergeSection(path, key string, section any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var flat map[string]any
	if err := json.Unmarshal(data, &flat); err != nil {
		return fmt.Errorf("vodperf: %s is not a flat benchmark record: %w", path, err)
	}
	if _, ok := flat["benchmarks"]; ok {
		return fmt.Errorf("vodperf: %s is a multi-run vodperf record; -merge expects the flat BENCH_serve.json shape", path)
	}
	flat[key] = section
	out, err := json.MarshalIndent(flat, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

const (
	// httpWindow bounds each closed-loop HTTP repetition; matches scaleWindow
	// so a full -runs 5 batch+single sweep stays a few seconds.
	httpWindow = 300 * time.Millisecond
	// httpRing caps the live sessions each worker keeps open; beyond it the
	// oldest ones are closed, pipelined into the next batch's round trip, so
	// steady-state occupancy stays bounded without a close per open.
	httpRing = 256
)

// benchHTTP measures the sharded HTTP ingress end to end: a fresh in-process
// daemon behind NewIngress, driven closed-loop over persistent fast
// connections. The gated metric is batched admission (POST /open/batch at
// `batch` videos per round trip); single-request round trips (POST /open)
// are reported alongside for the pipelining-win story. With minMult > 0 the
// batched rate must beat minMult× the baseline record's open-loop
// serve_decisions_per_sec, refusing the comparison when the baseline was
// measured at a different GOMAXPROCS.
func benchHTTP(runs int, seed int64, listeners, batch, shards int, minMult float64, baselinePath string) ([]obs.BenchMetric, obs.HTTPBench, error) {
	if batch <= 0 {
		return nil, obs.HTTPBench{}, fmt.Errorf("-batch must be positive, got %d", batch)
	}
	if minMult > 0 && baselinePath == "" {
		return nil, obs.HTTPBench{}, fmt.Errorf("-min-http-mult needs -http-baseline to anchor the multiple")
	}
	p, layout, _, err := vodcluster.Pipeline(config.Paper())
	if err != nil {
		return nil, obs.HTTPBench{}, err
	}
	if shards <= 0 {
		shards = p.N()
	}
	if listeners <= 0 {
		listeners = runtime.GOMAXPROCS(0)
	}
	gen, err := workload.NewGenerator(workload.Poisson{Lambda: 1000}, p.M(), estimateThetaOf(p))
	if err != nil {
		return nil, obs.HTTPBench{}, err
	}
	tr := gen.Generate(200, seed)
	if len(tr.Requests) == 0 {
		return nil, obs.HTTPBench{}, fmt.Errorf("http benchmark trace is empty")
	}
	vids := make([]int, len(tr.Requests))
	for i, r := range tr.Requests {
		vids[i] = r.Video
	}

	var dpsBatch, dpsSingle []float64
	for r := 0; r < runs; r++ {
		d, err := httpOnce(p, layout, shards, listeners, batch, vids)
		if err != nil {
			return nil, obs.HTTPBench{}, fmt.Errorf("http batch run %d: %w", r, err)
		}
		dpsBatch = append(dpsBatch, d)
	}
	for r := 0; r < runs; r++ {
		d, err := httpOnce(p, layout, shards, listeners, 1, vids)
		if err != nil {
			return nil, obs.HTTPBench{}, fmt.Errorf("http single run %d: %w", r, err)
		}
		dpsSingle = append(dpsSingle, d)
	}

	mb := obs.NewBenchMetric("http_decisions_per_sec", "decisions/s", true, true, dpsBatch)
	ms := obs.NewBenchMetric("http_single_decisions_per_sec", "decisions/s", true, false, dpsSingle)
	hb := obs.HTTPBench{
		Listeners: listeners, Shards: shards, Batch: batch,
		Gomaxprocs:            runtime.GOMAXPROCS(0),
		DecisionsPerSec:       mb.Mean,
		SingleDecisionsPerSec: ms.Mean,
	}

	if minMult > 0 {
		base, baseCores, err := baselineServeRate(baselinePath)
		if err != nil {
			return nil, obs.HTTPBench{}, err
		}
		if baseCores != 0 && baseCores != runtime.GOMAXPROCS(0) {
			return nil, obs.HTTPBench{}, fmt.Errorf(
				"http: baseline serve_decisions_per_sec was measured at GOMAXPROCS=%d but this run is at %d; refusing a cross-core-count multiple",
				baseCores, runtime.GOMAXPROCS(0))
		}
		if base <= 0 {
			return nil, obs.HTTPBench{}, fmt.Errorf("http: baseline serve_decisions_per_sec in %s is not positive", baselinePath)
		}
		if hb.DecisionsPerSec < minMult*base {
			return nil, obs.HTTPBench{}, fmt.Errorf(
				"http: %.0f batched decisions/s is %.2f× the baseline %.0f, below the required %.3g×",
				hb.DecisionsPerSec, hb.DecisionsPerSec/base, base, minMult)
		}
		fmt.Printf("http: %.2f× the baseline serve_decisions_per_sec (%.0f vs %.0f; required ≥%.3g×)\n",
			hb.DecisionsPerSec/base, hb.DecisionsPerSec, base, minMult)
	}
	return []obs.BenchMetric{mb, ms}, hb, nil
}

// baselineServeRate pulls the open-loop serve_decisions_per_sec (and the
// core count it was measured at) out of a flat BENCH_serve.json record.
func baselineServeRate(path string) (float64, int, error) {
	rec, err := obs.LoadBenchFile(path)
	if err != nil {
		return 0, 0, err
	}
	for _, m := range rec.Benchmarks {
		if m.Name == "serve_decisions_per_sec" {
			return m.Mean, m.Gomaxprocs, nil
		}
	}
	return 0, 0, fmt.Errorf("vodperf: %s has no serve_decisions_per_sec metric", path)
}

// httpOnce runs one closed-loop repetition against a fresh daemon fronted by
// a fresh sharded ingress. batch == 1 drives single POST /open round trips;
// batch > 1 drives POST /open/batch with closes of overflow sessions
// pipelined into the same flush as the next batch, so each round trip
// settles `batch` decisions. Workers each own one fast connection (FastConn
// is single-goroutine by design).
func httpOnce(p *core.Problem, layout *core.Layout, shards, listeners, batch int, vids []int) (float64, error) {
	srv, err := serve.New(p, layout, serve.Config{Compress: 3600, Shards: shards})
	if err != nil {
		return 0, err
	}
	defer srv.Shutdown()
	ing, err := serve.NewIngress(srv, serve.IngressConfig{Listeners: listeners, MaxBatch: batch})
	if err != nil {
		return 0, err
	}
	addr, err := ing.Start("127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer ing.Close()

	workers := 4 * runtime.GOMAXPROCS(0)
	counts := make([]int64, workers)
	errs := make([]error, workers)
	var stop atomic.Bool
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fc, err := serve.DialFast(addr.String())
			if err != nil {
				errs[w] = err
				return
			}
			defer fc.Close()
			var open []int64
			bvids := make([]int, batch)
			var res []serve.OpenResult
			i := w
			n := int64(0)
			for !stop.Load() {
				if batch == 1 {
					info, out, err := fc.Open(vids[i%len(vids)])
					i += workers
					if err != nil {
						errs[w] = err
						return
					}
					n++
					if out == serve.OutcomeAccepted {
						open = append(open, info.ID)
					}
					if len(open) > httpRing {
						if _, err := fc.CloseSession(open[0]); err != nil {
							errs[w] = err
							return
						}
						open = open[1:]
					}
					continue
				}
				for k := range bvids {
					bvids[k] = vids[i%len(vids)]
					i += workers
				}
				ncl := 0
				if len(open) > httpRing {
					ncl = len(open) - httpRing
					for _, id := range open[:ncl] {
						fc.QueueClose(id)
					}
				}
				fc.QueueOpenBatch(bvids)
				if err := fc.Flush(); err != nil {
					errs[w] = err
					return
				}
				for k := 0; k < ncl; k++ {
					if _, err := fc.ReadClose(); err != nil {
						errs[w] = err
						return
					}
				}
				open = open[ncl:]
				res, err = fc.ReadOpenBatch(res[:0])
				if err != nil {
					errs[w] = err
					return
				}
				n += int64(len(res))
				for _, or := range res {
					if or.Outcome == serve.OutcomeAccepted {
						open = append(open, or.Info.ID)
					}
				}
			}
			counts[w] = n
			// Settle the leftovers so the daemon drains cleanly; sessions
			// here no longer count toward the window.
			for _, id := range open {
				fc.QueueClose(id)
			}
			if err := fc.Flush(); err == nil {
				for range open {
					if _, err := fc.ReadClose(); err != nil {
						break
					}
				}
			}
		}(w)
	}
	time.Sleep(httpWindow)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	total := int64(0)
	for w := range counts {
		if errs[w] != nil {
			return 0, errs[w]
		}
		total += counts[w]
	}
	if total == 0 {
		return 0, fmt.Errorf("no admission decisions settled in the %s window", httpWindow)
	}
	return float64(total) / elapsed, nil
}

// estimateThetaOf recovers the Zipf skew the catalog was built with (the
// generator wants θ, the problem stores popularities): θ = log(p₁/p₂)/log 2.
func estimateThetaOf(p *core.Problem) float64 {
	pops := p.Catalog.Popularities()
	if len(pops) < 2 || pops[0] <= 0 || pops[1] <= 0 {
		return 0
	}
	theta := (math.Log(pops[0]) - math.Log(pops[1])) / math.Log(2)
	if theta < 0 {
		return 0
	}
	return theta
}

// printRecord renders the measured metrics as a table.
func printRecord(rec *obs.BenchRecord) {
	t := report.NewTable("benchmark", "unit", "runs", "mean", "stddev", "direction", "gate")
	for _, m := range rec.Benchmarks {
		dir := "lower is better"
		if m.HigherIsBetter {
			dir = "higher is better"
		}
		gate := "report-only"
		if m.Gate {
			gate = "gated"
		}
		t.AddRowf(m.Name, m.Unit, len(m.Samples), m.Mean, m.Stddev, dir, gate)
	}
	_ = t.Fprint(os.Stdout)
}

// runCompare loads two records, prints the per-metric deltas, and returns an
// error (exit 1) when a gated metric regressed beyond tolerance plus its
// noise margin, vanished from the new record, or was measured at a different
// GOMAXPROCS than the baseline. A non-empty prefix restricts the comparison
// to baseline metrics whose names start with it (e.g. scale_); a non-empty
// exclude drops baseline metrics matching any of its comma-separated
// prefixes, so the perf gate can leave the scaling and http sections to
// their own gates — a serve-smoke record legitimately carries neither, and
// their absence must not read as a regression.
func runCompare(oldPath, newPath string, tolerance float64, prefix, exclude string) error {
	oldRec, err := obs.LoadBenchFile(oldPath)
	if err != nil {
		return err
	}
	newRec, err := obs.LoadBenchFile(newPath)
	if err != nil {
		return err
	}
	var excludes []string
	for _, ex := range strings.Split(exclude, ",") {
		if ex = strings.TrimSpace(ex); ex != "" {
			excludes = append(excludes, ex)
		}
	}
	if prefix != "" || len(excludes) > 0 {
		kept := oldRec.Benchmarks[:0]
		for _, m := range oldRec.Benchmarks {
			if prefix != "" && !strings.HasPrefix(m.Name, prefix) {
				continue
			}
			excluded := false
			for _, ex := range excludes {
				if strings.HasPrefix(m.Name, ex) {
					excluded = true
					break
				}
			}
			if excluded {
				continue
			}
			kept = append(kept, m)
		}
		if len(kept) == 0 {
			return fmt.Errorf("no baseline metrics in %s survive -metrics %q -exclude %q", oldPath, prefix, exclude)
		}
		oldRec.Benchmarks = kept
	}
	deltas, failed := obs.CompareBench(oldRec, newRec, tolerance)

	fmt.Printf("comparing %s (old) vs %s (new), tolerance %.0f%% + noise margin\n", oldPath, newPath, 100*tolerance)
	t := report.NewTable("metric", "old", "new", "Δ% (+=worse)", "allowed %", "verdict")
	for _, d := range deltas {
		verdict := "ok"
		switch {
		case d.MissingNew:
			verdict = "MISSING"
		case d.CoreMismatch:
			verdict = "CORE-MISMATCH"
		case d.Regressed:
			verdict = "REGRESSED"
		case !d.Gate:
			verdict = "report-only"
		}
		newCell := fmt.Sprintf("%.4g", d.New)
		pctCell := fmt.Sprintf("%+.1f", 100*d.Pct)
		if d.MissingNew {
			newCell, pctCell = "-", "-"
		}
		if d.CoreMismatch {
			pctCell = "-"
		}
		t.AddRow(d.Name, fmt.Sprintf("%.4g", d.Old), newCell, pctCell,
			fmt.Sprintf("%.1f", 100*(tolerance+d.Margin)), verdict)
	}
	if err := t.Fprint(os.Stdout); err != nil {
		return err
	}
	if failed {
		return fmt.Errorf("performance regression: a gated metric worsened beyond tolerance, went missing, or was measured at a different core count than its baseline")
	}
	fmt.Println("no gated regressions")
	return nil
}
