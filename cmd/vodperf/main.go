// Command vodperf is the performance-regression harness: it runs the
// canonical benchmarks several times, writes a manifest-stamped JSON record
// with per-run samples, and compares two records with a noise-adjusted
// tolerance — the gate CI fails merges on.
//
//	vodperf -out BENCH_perf.json -runs 5            # measure everything
//	vodperf -bench serve -runs 3 -out serve.json    # just the serving path
//	vodperf -compare old.json new.json -tolerance 0.10
//
// Three benchmarks exist: "fig4" times the canonical Figure-4 quick sweep
// (3 degrees × 3 arrival rates × 3 replications on the internal/exp
// harness) and derives simulator events/second from the deterministic
// engine event count; "serve" replays an open-loop burst against an
// in-process daemon (the serve-smoke workload) and records admission
// throughput and latency percentiles; "anneal" runs the §4.3
// scalable-bit-rate annealer on the vodbench instance and records proposal
// throughput, guarding the delta-evaluation fast path against regressions.
//
// -compare also accepts the flat single-run records the smoke targets
// write (BENCH_serve.json, BENCH_sweep.json); those gate only on
// throughput-type metrics, with a fixed single-sample noise allowance,
// because one run carries no noise estimate for tail latencies. Exit
// status 1 means a gated metric regressed beyond tolerance + noise margin
// (or disappeared from the new record).
//
// -admit-delay artificially slows every admission decision of the serve
// benchmark; it exists so tests can prove the gate catches a genuine
// slowdown.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"time"

	"vodcluster"
	"vodcluster/internal/anneal"
	"vodcluster/internal/config"
	"vodcluster/internal/core"
	"vodcluster/internal/exp"
	"vodcluster/internal/faults"
	"vodcluster/internal/obs"
	"vodcluster/internal/report"
	"vodcluster/internal/serve"
	"vodcluster/internal/sim"
	"vodcluster/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vodperf:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", "BENCH_perf.json", "write the benchmark record to this file")
	runs := flag.Int("runs", 5, "repetitions per benchmark; more runs tighten the noise margin")
	bench := flag.String("bench", "all", "which benchmarks to run: all | fig4 | serve | anneal")
	seed := flag.Int64("seed", 42, "seed for the simulated sweep and the replay trace")
	rate := flag.Float64("rate", 8000, "serve benchmark: admission decisions per wall second")
	burst := flag.Float64("burst", 1, "serve benchmark: burst length in wall seconds")
	compress := flag.Float64("compress", 3600, "serve benchmark: time-compression factor")
	workers := flag.Int("workers", 1, "fig4 benchmark: parallel simulations; 1 (sequential) has the least timing noise")
	admitDelay := flag.Duration("admit-delay", 0, "serve benchmark: artificial delay per admission decision (regression-test harness)")
	traceEvents := flag.Int("trace", 0, "serve benchmark: enable session tracing with this ring capacity — for measuring tracer overhead (0 = off)")
	compare := flag.Bool("compare", false, "compare two records: vodperf -compare OLD NEW")
	tolerance := flag.Float64("tolerance", 0.10, "compare: allowed relative worsening of a gated metric before the noise margin")
	flag.Parse()

	if *compare {
		// Allow `vodperf -compare OLD NEW -tolerance 0.10`: the flag package
		// stops at the first positional argument, so flags trailing the two
		// paths are parsed in a second pass.
		args := flag.Args()
		if len(args) < 2 {
			return fmt.Errorf("-compare needs two record paths: vodperf -compare OLD NEW")
		}
		oldPath, newPath := args[0], args[1]
		if len(args) > 2 {
			if err := flag.CommandLine.Parse(args[2:]); err != nil {
				return err
			}
			if flag.NArg() > 0 {
				return fmt.Errorf("-compare takes exactly two record paths; unexpected %q", flag.Args())
			}
		}
		return runCompare(oldPath, newPath, *tolerance)
	}
	if *runs < 1 {
		return fmt.Errorf("-runs must be at least 1, got %d", *runs)
	}
	if *bench != "all" && *bench != "fig4" && *bench != "serve" && *bench != "anneal" {
		return fmt.Errorf("-bench must be all, fig4, serve, or anneal, got %q", *bench)
	}

	rec := &obs.BenchRecord{Manifest: obs.NewManifest()}
	rec.Manifest.Seed = *seed
	rec.Manifest.Flags = map[string]string{
		"bench":   *bench,
		"runs":    fmt.Sprint(*runs),
		"rate":    fmt.Sprint(*rate),
		"burst":   fmt.Sprint(*burst),
		"workers": fmt.Sprint(*workers),
	}
	if *admitDelay > 0 {
		rec.Manifest.Flags["admit-delay"] = admitDelay.String()
	}
	if *traceEvents > 0 {
		rec.Manifest.Flags["trace"] = fmt.Sprint(*traceEvents)
	}

	if *bench == "all" || *bench == "fig4" {
		ms, err := benchFig4(*runs, *seed, *workers)
		if err != nil {
			return err
		}
		rec.Benchmarks = append(rec.Benchmarks, ms...)
	}
	if *bench == "all" || *bench == "serve" {
		ms, err := benchServe(*runs, *seed, *rate, *burst, *compress, *admitDelay, *traceEvents)
		if err != nil {
			return err
		}
		rec.Benchmarks = append(rec.Benchmarks, ms...)
	}
	if *bench == "all" || *bench == "anneal" {
		ms, err := benchAnneal(*runs, *seed)
		if err != nil {
			return err
		}
		rec.Benchmarks = append(rec.Benchmarks, ms...)
	}

	printRecord(rec)
	if err := rec.WriteFile(*out); err != nil {
		return err
	}
	fmt.Printf("\nbenchmark record (%d runs/bench) written to %s\n", *runs, *out)
	return nil
}

// benchFig4 times the canonical Figure-4 quick sweep — the same grid
// BenchmarkFig4Sweep and the CI bench-smoke step run: 3 replication degrees
// × λ {16,32,40} req/min × 3 replications. Simulator throughput is derived
// as the grid's deterministic engine event count over the wall clock, so the
// two metrics move together unless the event mix itself changed. Both are
// report-only: pure wall-clock metrics drift up to ~30% between invocations
// on shared CI runners (measured here: 56–89ms for the same grid), which no
// tolerance can gate without flaking. The serve benchmark's decisions/s —
// bounded by offered load, stable to <0.1% across invocations, yet halved by
// a 50ms admit delay — carries the regression gate instead.
func benchFig4(runs int, seed int64, workers int) ([]obs.BenchMetric, error) {
	series := make([]exp.Series, 0, 3)
	for _, degree := range []float64{1.0, 1.4, 2.0} {
		s := config.Paper()
		s.Degree = degree
		p, layout, sched, err := vodcluster.Pipeline(s)
		if err != nil {
			return nil, err
		}
		series = append(series, exp.Series{
			Name: fmt.Sprintf("deg %.1f", degree),
			Config: func(lam float64) (sim.Config, error) {
				q := p.Clone()
				q.ArrivalRate = lam / core.Minute
				return sim.Config{Problem: q, Layout: layout, NewScheduler: sched}, nil
			},
		})
	}

	var events int
	secs, err := exp.Timed(runs, func(int) error {
		sweep := &exp.Sweep{
			Xs: []float64{16, 32, 40}, Series: series,
			Runs: 3, Seed: seed, Workers: workers,
		}
		grid, err := sweep.Run()
		if err != nil {
			return err
		}
		events = 0
		for _, pts := range grid {
			for _, pt := range pts {
				for _, r := range pt.Results {
					events += r.Events
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	eps := make([]float64, len(secs))
	for i, s := range secs {
		eps[i] = float64(events) / s
	}
	return []obs.BenchMetric{
		obs.NewBenchMetric("fig4_wall_sec", "s", false, false, secs),
		obs.NewBenchMetric("fig4_events_per_sec", "events/s", true, false, eps),
	}, nil
}

// benchAnneal times the §4.3 scalable-bit-rate annealer on the same instance
// vodbench -fig sa optimizes: the paper cluster with 50 GB/server and the
// {2, 4, 6, 8} Mb/s rate set. Proposal throughput gates: it is CPU-bound,
// deterministic in work per step, and the direct measure of the
// delta-evaluation fast path — a regression to clone-and-rescan evaluation
// drops it by more than an order of magnitude. The final objective is
// recorded report-only as a sanity check that speed never bought a worse
// solution.
func benchAnneal(runs int, seed int64) ([]obs.BenchMetric, error) {
	s := config.Paper()
	s.StorageGB = 50 // fixed storage: the annealer chooses rates vs replicas
	p, err := s.Problem()
	if err != nil {
		return nil, err
	}
	bp := &anneal.BitRateProblem{
		P:       p,
		RateSet: []float64{2 * core.Mbps, 4 * core.Mbps, 6 * core.Mbps, 8 * core.Mbps},
	}
	init, err := bp.InitialSolution()
	if err != nil {
		return nil, err
	}
	const steps = 200_000
	var sps, objs []float64
	for i := 0; i < runs; i++ {
		opts := anneal.DefaultOptions()
		opts.Seed = seed
		opts.MaxSteps = steps
		opts.PlateauSteps = 2000 // stretch the schedule so MaxSteps terminates
		start := time.Now()
		res, err := anneal.Minimize[*anneal.BitRateLayout](bp, init, opts)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start).Seconds()
		if res.Steps != steps {
			return nil, fmt.Errorf("anneal benchmark ran %d steps, want %d", res.Steps, steps)
		}
		e := bp.Evaluate(res.Best)
		if !e.Feasible() {
			return nil, fmt.Errorf("anneal benchmark ended infeasible: %+v", e)
		}
		sps = append(sps, float64(res.Steps)/elapsed)
		objs = append(objs, e.Objective)
	}
	return []obs.BenchMetric{
		obs.NewBenchMetric("anneal_steps_per_sec", "proposals/s", true, true, sps),
		obs.NewBenchMetric("anneal_objective", "", true, false, objs),
	}, nil
}

// benchServe replays the serve-smoke burst against a fresh in-process
// daemon per repetition. Throughput and the p50 both gate: throughput
// catches stalls big enough to saturate the client's connection pool,
// while the p50 — with a noise margin measured across repetitions — catches
// per-decision slowdowns that open-loop dispatch would otherwise hide.
// traceEvents > 0 runs each daemon with a session tracer of that capacity,
// so the tracer's own overhead is measurable with the same gate.
func benchServe(runs int, seed int64, rate, burst, compress float64, admitDelay time.Duration, traceEvents int) ([]obs.BenchMetric, error) {
	p, layout, _, err := vodcluster.Pipeline(config.Paper())
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(workload.Poisson{Lambda: rate / compress}, p.M(), estimateThetaOf(p))
	if err != nil {
		return nil, err
	}
	// One trace for every repetition: run-to-run deltas then measure the
	// server, not the workload.
	tr := gen.Generate(burst*compress, seed)
	if len(tr.Requests) == 0 {
		return nil, fmt.Errorf("serve benchmark trace is empty; raise -rate or -burst")
	}

	var dps, p50, p99, lmax []float64
	for i := 0; i < runs; i++ {
		rep, err := replayOnce(p, layout, compress, admitDelay, traceEvents, tr)
		if err != nil {
			return nil, fmt.Errorf("serve run %d: %w", i, err)
		}
		dps = append(dps, rep.DecisionsPerSec())
		p50 = append(p50, rep.LatencyQuantile(0.50).Seconds()*1e3)
		p99 = append(p99, rep.LatencyQuantile(0.99).Seconds()*1e3)
		lmax = append(lmax, rep.LatencyQuantile(1).Seconds()*1e3)
	}
	return []obs.BenchMetric{
		obs.NewBenchMetric("serve_decisions_per_sec", "decisions/s", true, true, dps),
		obs.NewBenchMetric("serve_latency_p50_ms", "ms", false, true, p50),
		obs.NewBenchMetric("serve_latency_p99_ms", "ms", false, true, p99),
		obs.NewBenchMetric("serve_latency_max_ms", "ms", false, false, lmax),
	}, nil
}

// replayOnce stands up a fresh loopback daemon, replays the trace open-loop,
// and tears the daemon down. The daemon runs with the health-check loop
// attached and probing aggressively (100 ms cadence against an all-healthy
// injector), so the gated serve_decisions_per_sec covers the failure
// machinery's steady-state cost on the admission hot path — the state loads,
// probe bookkeeping, and retry branch a production daemon pays.
func replayOnce(p *core.Problem, layout *core.Layout, compress float64, admitDelay time.Duration, traceEvents int, tr *workload.Trace) (*serve.Report, error) {
	var tracer *obs.Tracer
	if traceEvents > 0 {
		tracer = obs.NewTracer(traceEvents)
	}
	srv, err := serve.New(p, layout, serve.Config{Compress: compress, AdmitDelay: admitDelay, Tracer: tracer})
	if err != nil {
		return nil, err
	}
	in := faults.NewInjector()
	srv.AttachInjector(in)
	hc := serve.NewHealthChecker(srv, in, serve.HealthConfig{Interval: 100 * time.Millisecond})
	hc.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer func() { srv.Shutdown(); _ = hs.Close() }()

	client := serve.NewClient("http://" + ln.Addr().String())
	rep, err := client.Replay(context.Background(), tr, compress)
	if err != nil {
		return nil, err
	}
	if rep.Errors > 0 {
		return nil, fmt.Errorf("%d transport errors; first: %v", rep.Errors, rep.FirstError)
	}
	if rep.Accepted == 0 {
		return nil, fmt.Errorf("no sessions admitted; the daemon rejected the whole burst")
	}
	return rep, nil
}

// estimateThetaOf recovers the Zipf skew the catalog was built with (the
// generator wants θ, the problem stores popularities): θ = log(p₁/p₂)/log 2.
func estimateThetaOf(p *core.Problem) float64 {
	pops := p.Catalog.Popularities()
	if len(pops) < 2 || pops[0] <= 0 || pops[1] <= 0 {
		return 0
	}
	theta := (math.Log(pops[0]) - math.Log(pops[1])) / math.Log(2)
	if theta < 0 {
		return 0
	}
	return theta
}

// printRecord renders the measured metrics as a table.
func printRecord(rec *obs.BenchRecord) {
	t := report.NewTable("benchmark", "unit", "runs", "mean", "stddev", "direction", "gate")
	for _, m := range rec.Benchmarks {
		dir := "lower is better"
		if m.HigherIsBetter {
			dir = "higher is better"
		}
		gate := "report-only"
		if m.Gate {
			gate = "gated"
		}
		t.AddRowf(m.Name, m.Unit, len(m.Samples), m.Mean, m.Stddev, dir, gate)
	}
	_ = t.Fprint(os.Stdout)
}

// runCompare loads two records, prints the per-metric deltas, and returns an
// error (exit 1) when a gated metric regressed beyond tolerance plus its
// noise margin — or vanished from the new record.
func runCompare(oldPath, newPath string, tolerance float64) error {
	oldRec, err := obs.LoadBenchFile(oldPath)
	if err != nil {
		return err
	}
	newRec, err := obs.LoadBenchFile(newPath)
	if err != nil {
		return err
	}
	deltas, failed := obs.CompareBench(oldRec, newRec, tolerance)

	fmt.Printf("comparing %s (old) vs %s (new), tolerance %.0f%% + noise margin\n", oldPath, newPath, 100*tolerance)
	t := report.NewTable("metric", "old", "new", "Δ% (+=worse)", "allowed %", "verdict")
	for _, d := range deltas {
		verdict := "ok"
		switch {
		case d.MissingNew:
			verdict = "MISSING"
		case d.Regressed:
			verdict = "REGRESSED"
		case !d.Gate:
			verdict = "report-only"
		}
		newCell := fmt.Sprintf("%.4g", d.New)
		pctCell := fmt.Sprintf("%+.1f", 100*d.Pct)
		if d.MissingNew {
			newCell, pctCell = "-", "-"
		}
		t.AddRow(d.Name, fmt.Sprintf("%.4g", d.Old), newCell, pctCell,
			fmt.Sprintf("%.1f", 100*(tolerance+d.Margin)), verdict)
	}
	if err := t.Fprint(os.Stdout); err != nil {
		return err
	}
	if failed {
		return fmt.Errorf("performance regression: a gated metric worsened beyond tolerance (or went missing)")
	}
	fmt.Println("no gated regressions")
	return nil
}
