// Command vodab is the counterfactual policy-scoring harness: it replays
// the same arrival trace through several scheduling policies in lockstep and
// scores every candidate decision-by-decision against a reference policy.
// All candidates run under common random numbers — identical arrivals and
// identical per-decision RNG streams — so every divergence and every unit of
// regret is attributable to the policies alone, not to sampling noise.
//
//	vodab -policies static-rr,least-loaded -runs 20
//	vodab -policies static-rr,least-loaded,random -reference least-loaded
//	vodab -scenario scenario.json -policies static-rr,least-loaded -csv out/
//	vodab -journal divergences.json -curve-stride 200
//
// The summary table reports each candidate's mean total regret (extra
// rejections per replication relative to the reference) with a 95% paired
// confidence interval, the divergence count, and the first request where the
// candidate chose differently and why. -journal writes the full divergence
// journal as JSON; -csv mirrors the tables as CSV.
//
// -smoke runs the harness self-check used by CI: the reference compared
// against itself must produce exactly zero divergences and zero regret,
// while a genuinely different candidate must diverge at least once.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vodcluster"
	"vodcluster/internal/config"
	"vodcluster/internal/core"
	"vodcluster/internal/exp"
	"vodcluster/internal/policy"
	"vodcluster/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vodab:", err)
		os.Exit(1)
	}
}

func run() error {
	s := config.Paper()
	scenarioPath := flag.String("scenario", "", "JSON scenario file; empty uses the paper defaults")
	planPath := flag.String("plan", "", "replay a plan written by vodplace -out instead of recomputing the layout")
	policies := flag.String("policies", "static-rr,least-loaded", "comma-separated candidate policies to compare (shared registry names)")
	reference := flag.String("reference", "", "reference policy regret is measured against; empty means the first candidate")
	flag.IntVar(&s.Runs, "runs", s.Runs, "number of replications (paired across candidates)")
	flag.Int64Var(&s.Seed, "seed", s.Seed, "master random seed")
	flag.Float64Var(&s.LambdaPerMin, "lambda", s.LambdaPerMin, "arrival rate (requests/minute)")
	duration := flag.Float64("duration", 0, "arrival window in seconds; 0 means the scenario's peak period")
	workers := flag.Int("workers", 0, "parallel simulations across the candidate × replication grid; 0 = GOMAXPROCS")
	tracePath := flag.String("trace", "", "replay this JSON trace (workload format) for every replication instead of generating arrivals")
	csvDir := flag.String("csv", "", "mirror the summary and regret-curve tables as CSV into this directory")
	journalPath := flag.String("journal", "", "write the full divergence journal as JSON to this file")
	curveStride := flag.Int("curve-stride", 100, "sample the cumulative regret curve every this many decisions")
	smoke := flag.Bool("smoke", false, "run the harness self-check: reference-vs-itself must be exactly zero, a different candidate must diverge")
	listPolicies := flag.Bool("list-policies", false, "print the scheduling-policy registry and exit")
	flag.Parse()

	if *listPolicies {
		fmt.Print("Scheduling policies (shared registry, internal/policy):\n\n", policy.List())
		return nil
	}

	if *scenarioPath != "" {
		f, err := os.Open(*scenarioPath)
		if err != nil {
			return err
		}
		runs, seed, lam := s.Runs, s.Seed, s.LambdaPerMin
		s, err = config.Load(f)
		f.Close()
		if err != nil {
			return err
		}
		s.Runs, s.Seed, s.LambdaPerMin = runs, seed, lam
	}

	var (
		p      *core.Problem
		layout *core.Layout
		err    error
	)
	if *planPath != "" {
		f, err := os.Open(*planPath)
		if err != nil {
			return err
		}
		plan, err := config.LoadPlan(f)
		f.Close()
		if err != nil {
			return err
		}
		if p, layout, err = plan.Layout(); err != nil {
			return err
		}
	} else {
		if p, layout, _, err = vodcluster.Pipeline(s); err != nil {
			return err
		}
	}
	p = p.Clone()
	p.ArrivalRate = s.LambdaPerMin / core.Minute

	names := splitList(*policies)
	if len(names) == 0 {
		return fmt.Errorf("-policies needs at least one policy name")
	}
	candidates, err := resolveCandidates(names, p.BackboneBandwidth > 0)
	if err != nil {
		return err
	}
	ref := *reference
	if ref == "" {
		ref = candidates[0].Name
	}
	if *smoke {
		// The self-check candidate: the reference policy under a second
		// name, which must decide identically to the reference everywhere.
		self, err := resolveCandidates([]string{ref}, p.BackboneBandwidth > 0)
		if err != nil {
			return err
		}
		self[0].Name = ref + "#self"
		candidates = append(candidates, self[0])
	}

	var trace *workload.Trace
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		trace, err = workload.Load(f)
		f.Close()
		if err != nil {
			return err
		}
	}

	ls := &exp.Lockstep{
		Problem:    p,
		Layout:     layout,
		Candidates: candidates,
		Reference:  ref,
		Trace:      trace,
		Duration:   *duration,
		Runs:       s.Runs,
		Seed:       s.Seed,
		Workers:    *workers,
	}
	res, err := ls.Run()
	if err != nil {
		return err
	}

	em := &exp.Emitter{CSVDir: *csvDir}
	if err := res.Report(em, *curveStride); err != nil {
		return err
	}
	if *journalPath != "" {
		f, err := os.Create(*journalPath)
		if err != nil {
			return err
		}
		werr := res.WriteJournal(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Fprintf(os.Stderr, "vodab: divergence journal written to %s\n", *journalPath)
	}
	if *smoke {
		return smokeCheck(res, ref)
	}
	return nil
}

// splitList parses a comma-separated name list, trimming whitespace and
// dropping empty parts.
func splitList(list string) []string {
	var names []string
	for _, part := range strings.Split(list, ",") {
		if part = strings.TrimSpace(part); part != "" {
			names = append(names, part)
		}
	}
	return names
}

// resolveCandidates maps registry names to lockstep candidates; redirection
// over the backbone is applied exactly when the cluster has one, the same
// convention as the simulator pipeline.
func resolveCandidates(names []string, backbone bool) ([]exp.Candidate, error) {
	candidates := make([]exp.Candidate, 0, len(names))
	for _, name := range names {
		e, err := policy.Lookup(name)
		if err != nil {
			return nil, err
		}
		factory, err := policy.SchedulerFactory(e.Name, backbone)
		if err != nil {
			return nil, err
		}
		candidates = append(candidates, exp.Candidate{Name: e.Name, NewScheduler: factory})
	}
	return candidates, nil
}

// smokeCheck enforces the harness invariants CI leans on: the reference
// scored against itself (under its own name and the "#self" alias) yields
// exactly zero divergences and zero regret, and at least one genuinely
// different candidate diverges at least once.
func smokeCheck(res *exp.LockstepResult, ref string) error {
	otherDivergences := 0
	for i := range res.Candidates {
		c := &res.Candidates[i]
		selfNamed := c.Name == ref || c.Name == ref+"#self"
		if selfNamed {
			if len(c.Divergences) != 0 {
				return fmt.Errorf("smoke: %s diverged %d times from the reference %s — lockstep replay is not deterministic",
					c.Name, len(c.Divergences), ref)
			}
			if c.Regret.Mean() != 0 || c.Regret.Min() != 0 || c.Regret.Max() != 0 {
				return fmt.Errorf("smoke: %s has nonzero self-regret (mean %g)", c.Name, c.Regret.Mean())
			}
			continue
		}
		otherDivergences += len(c.Divergences)
	}
	hasOther := false
	for i := range res.Candidates {
		name := res.Candidates[i].Name
		if name != ref && name != ref+"#self" {
			hasOther = true
		}
	}
	if hasOther && otherDivergences == 0 {
		return fmt.Errorf("smoke: no candidate ever diverged from %s — the harness is not distinguishing policies", ref)
	}
	fmt.Fprintf(os.Stderr, "vodab: smoke OK — reference self-check exactly zero, %d divergence(s) across other candidates\n", otherDivergences)
	return nil
}
