package main

import (
	"fmt"
	"os"
	"strings"

	"vodcluster"
	"vodcluster/internal/config"
	"vodcluster/internal/report"
)

// Reconstructed sweep parameters (the figure axes in the available paper text
// are OCR-damaged; EXPERIMENTS.md documents the reconstruction). The
// saturation arrival rate of the paper's cluster is 40 requests/minute.
var (
	lambdaSweep      = []float64{8, 16, 24, 28, 32, 36, 40, 44}
	lambdaSweepQuick = []float64{16, 32, 40}
	degreeSweep      = []float64{1.0, 1.2, 1.4, 1.6, 1.8, 2.0}
	degreeSweepQuick = []float64{1.0, 1.4, 2.0}
	thetas           = []float64{0.75, 0.25}
)

// combo names one replication+placement pairing.
type combo struct{ repl, plac string }

func (c combo) String() string { return c.repl + "+" + c.plac }

var fourCombos = []combo{
	{"zipf", "slf"},
	{"zipf", "roundrobin"},
	{"classification", "slf"},
	{"classification", "roundrobin"},
}

// sweepCombo builds the layout for one (θ, degree, combo) cell and sweeps the
// arrival rate, returning rejection-rate and imbalance series.
func sweepCombo(cfg benchConfig, theta, degree float64, c combo, lambdas []float64) ([]vodcluster.SweepPoint, error) {
	s := config.Paper()
	s.Theta = theta
	s.Degree = degree
	s.Replicator = c.repl
	s.Placer = c.plac
	p, layout, sched, err := vodcluster.Pipeline(s)
	if err != nil {
		return nil, fmt.Errorf("%s at θ=%g degree=%g: %w", c, theta, degree, err)
	}
	return vodcluster.SweepArrivalRates(p, layout, sched, lambdas, cfg.runs, cfg.seed)
}

// figure4 reproduces Fig. 4: impact of the replication degree on rejection
// rate, for (a, c) Zipf replication + smallest-load-first placement and
// (b, d) classification replication + round-robin placement, at two skews.
func figure4(cfg benchConfig) error {
	lambdas, degrees := lambdaSweep, degreeSweep
	if cfg.quick {
		lambdas, degrees = lambdaSweepQuick, degreeSweepQuick
	}
	subplots := []struct {
		label string
		theta float64
		c     combo
	}{
		{"(a)", thetas[0], combo{"zipf", "slf"}},
		{"(b)", thetas[0], combo{"classification", "roundrobin"}},
		{"(c)", thetas[1], combo{"zipf", "slf"}},
		{"(d)", thetas[1], combo{"classification", "roundrobin"}},
	}
	fmt.Println("=== Figure 4: rejection rate vs arrival rate, by replication degree ===")
	for _, sub := range subplots {
		fmt.Printf("\n--- Fig. 4%s %s, θ=%.2f ---\n", sub.label, sub.c, sub.theta)
		t := report.NewTable(append([]string{"λ (req/min)"}, degreeLabels(degrees)...)...)
		chart := &report.Chart{
			Title:  fmt.Sprintf("Fig. 4%s rejection rate (%%) — %s, θ=%.2f", sub.label, sub.c, sub.theta),
			XLabel: "arrival rate (req/min)", YLabel: "rejection rate (%)",
		}
		cells := make([][]float64, len(lambdas))
		for i := range cells {
			cells[i] = make([]float64, len(degrees))
		}
		for di, deg := range degrees {
			pts, err := sweepCombo(cfg, sub.theta, deg, sub.c, lambdas)
			if err != nil {
				return err
			}
			ys := make([]float64, len(pts))
			for i, pt := range pts {
				cells[i][di] = 100 * pt.Agg.RejectionRate.Mean()
				ys[i] = cells[i][di]
			}
			chart.Add(report.Series{Name: fmt.Sprintf("deg %.1f", deg), X: lambdas, Y: ys})
		}
		for i, lam := range lambdas {
			row := make([]any, 0, len(degrees)+1)
			row = append(row, lam)
			for _, v := range cells[i] {
				row = append(row, v)
			}
			t.AddRowf(row...)
		}
		if err := emitTable(cfg, fmt.Sprintf("fig4%s-%s-theta%.2f", strings.Trim(sub.label, "()"), sub.c, sub.theta), t); err != nil {
			return err
		}
		if err := chart.Fprint(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// figure5 reproduces Fig. 5: impact of the four algorithm combinations on
// rejection rate at replication degrees 1.2 and 2.0 and two skews.
func figure5(cfg benchConfig) error {
	lambdas := lambdaSweep
	if cfg.quick {
		lambdas = lambdaSweepQuick
	}
	subplots := []struct {
		label  string
		theta  float64
		degree float64
	}{
		{"(a)", thetas[0], 1.2},
		{"(b)", thetas[0], 2.0},
		{"(c)", thetas[1], 1.2},
		{"(d)", thetas[1], 2.0},
	}
	fmt.Println("\n=== Figure 5: rejection rate vs arrival rate, by algorithm combination ===")
	for _, sub := range subplots {
		fmt.Printf("\n--- Fig. 5%s degree %.1f, θ=%.2f ---\n", sub.label, sub.degree, sub.theta)
		t := report.NewTable("λ (req/min)", fourCombos[0].String(), fourCombos[1].String(), fourCombos[2].String(), fourCombos[3].String())
		chart := &report.Chart{
			Title:  fmt.Sprintf("Fig. 5%s rejection rate (%%) — degree %.1f, θ=%.2f", sub.label, sub.degree, sub.theta),
			XLabel: "arrival rate (req/min)", YLabel: "rejection rate (%)",
		}
		cells := make([][]float64, len(lambdas))
		for i := range cells {
			cells[i] = make([]float64, len(fourCombos))
		}
		for ci, c := range fourCombos {
			pts, err := sweepCombo(cfg, sub.theta, sub.degree, c, lambdas)
			if err != nil {
				return err
			}
			ys := make([]float64, len(pts))
			for i, pt := range pts {
				cells[i][ci] = 100 * pt.Agg.RejectionRate.Mean()
				ys[i] = cells[i][ci]
			}
			chart.Add(report.Series{Name: c.String(), X: lambdas, Y: ys})
		}
		for i, lam := range lambdas {
			t.AddRowf(lam, cells[i][0], cells[i][1], cells[i][2], cells[i][3])
		}
		if err := emitTable(cfg, fmt.Sprintf("fig5%s-deg%.1f-theta%.2f", strings.Trim(sub.label, "()"), sub.degree, sub.theta), t); err != nil {
			return err
		}
		if err := chart.Fprint(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// figure6 reproduces Fig. 6: the measured load imbalance degree L (%) versus
// arrival rate for the four combinations, at θ = 0.75 and degrees 1.2, 2.0.
// The plotted L is the capacity-normalized spread (max_j l_j − l̄)/B, the
// variant whose measured curve traces the paper's shape: rising at light
// load, peaking at mid arrival rates, and collapsing past saturation (see
// EXPERIMENTS.md for the discussion of the normalization choice).
func figure6(cfg benchConfig) error {
	lambdas := lambdaSweep
	if cfg.quick {
		lambdas = lambdaSweepQuick
	}
	subplots := []struct {
		label  string
		degree float64
	}{
		{"(a)", 1.2},
		{"(b)", 2.0},
	}
	fmt.Println("\n=== Figure 6: load imbalance degree L(%) vs arrival rate ===")
	for _, sub := range subplots {
		fmt.Printf("\n--- Fig. 6%s degree %.1f, θ=%.2f ---\n", sub.label, sub.degree, thetas[0])
		t := report.NewTable("λ (req/min)", fourCombos[0].String(), fourCombos[1].String(), fourCombos[2].String(), fourCombos[3].String())
		chart := &report.Chart{
			Title:  fmt.Sprintf("Fig. 6%s load imbalance L (%%) — degree %.1f, θ=%.2f", sub.label, sub.degree, thetas[0]),
			XLabel: "arrival rate (req/min)", YLabel: "L (%)",
		}
		cells := make([][]float64, len(lambdas))
		for i := range cells {
			cells[i] = make([]float64, len(fourCombos))
		}
		for ci, c := range fourCombos {
			pts, err := sweepCombo(cfg, thetas[0], sub.degree, c, lambdas)
			if err != nil {
				return err
			}
			ys := make([]float64, len(pts))
			for i, pt := range pts {
				cells[i][ci] = 100 * pt.Agg.ImbalanceCapAvg.Mean()
				ys[i] = cells[i][ci]
			}
			chart.Add(report.Series{Name: c.String(), X: lambdas, Y: ys})
		}
		for i, lam := range lambdas {
			t.AddRowf(lam, cells[i][0], cells[i][1], cells[i][2], cells[i][3])
		}
		if err := emitTable(cfg, fmt.Sprintf("fig6%s-deg%.1f", strings.Trim(sub.label, "()"), sub.degree), t); err != nil {
			return err
		}
		if err := chart.Fprint(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

func degreeLabels(degrees []float64) []string {
	out := make([]string, len(degrees))
	for i, d := range degrees {
		out[i] = fmt.Sprintf("deg %.1f (%%)", d)
	}
	return out
}
