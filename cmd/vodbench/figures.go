package main

import (
	"fmt"
	"strings"

	"vodcluster"
	"vodcluster/internal/config"
	"vodcluster/internal/core"
	"vodcluster/internal/exp"
	"vodcluster/internal/sim"
)

// Reconstructed sweep parameters (the figure axes in the available paper text
// are OCR-damaged; EXPERIMENTS.md documents the reconstruction). The
// saturation arrival rate of the paper's cluster is 40 requests/minute.
var (
	lambdaSweep      = []float64{8, 16, 24, 28, 32, 36, 40, 44}
	lambdaSweepQuick = []float64{16, 32, 40}
	degreeSweep      = []float64{1.0, 1.2, 1.4, 1.6, 1.8, 2.0}
	degreeSweepQuick = []float64{1.0, 1.4, 2.0}
	thetas           = []float64{0.75, 0.25}
)

// combo names one replication+placement pairing.
type combo struct{ repl, plac string }

func (c combo) String() string { return c.repl + "+" + c.plac }

var fourCombos = []combo{
	{"zipf", "slf"},
	{"zipf", "roundrobin"},
	{"classification", "slf"},
	{"classification", "roundrobin"},
}

// sweep builds an exp.Sweep over arrival rates with the bench's shared knobs.
func (cfg benchConfig) sweep(lambdas []float64, series []exp.Series) *exp.Sweep {
	return &exp.Sweep{
		Xs:      lambdas,
		Series:  series,
		Runs:    cfg.runs,
		Seed:    cfg.seed,
		Workers: cfg.workers,
	}
}

// comboSeries builds one sweep series for a (θ, degree, combo) cell: the
// layout is computed once, for the peak rate, exactly as the paper's
// conservative model prescribes — replication and placement decisions do not
// depend on λ, only the runtime load does.
func comboSeries(name string, theta, degree float64, c combo) (exp.Series, error) {
	s := config.Paper()
	s.Theta = theta
	s.Degree = degree
	s.Replicator = c.repl
	s.Placer = c.plac
	p, layout, sched, err := vodcluster.Pipeline(s)
	if err != nil {
		return exp.Series{}, fmt.Errorf("%s at θ=%g degree=%g: %w", c, theta, degree, err)
	}
	return exp.Series{Name: name, Config: func(lam float64) (sim.Config, error) {
		q := p.Clone()
		q.ArrivalRate = lam / core.Minute
		return sim.Config{Problem: q, Layout: layout, NewScheduler: sched}, nil
	}}, nil
}

// comboSeriesList builds one series per combo at a fixed (θ, degree).
func comboSeriesList(theta, degree float64, combos []combo) ([]exp.Series, error) {
	series := make([]exp.Series, 0, len(combos))
	for _, c := range combos {
		ser, err := comboSeries(c.String(), theta, degree, c)
		if err != nil {
			return nil, err
		}
		series = append(series, ser)
	}
	return series, nil
}

// figure4 reproduces Fig. 4: impact of the replication degree on rejection
// rate, for (a, c) Zipf replication + smallest-load-first placement and
// (b, d) classification replication + round-robin placement, at two skews.
func figure4(cfg benchConfig) error {
	lambdas, degrees := lambdaSweep, degreeSweep
	if cfg.quick {
		lambdas, degrees = lambdaSweepQuick, degreeSweepQuick
	}
	subplots := []struct {
		label string
		theta float64
		c     combo
	}{
		{"(a)", thetas[0], combo{"zipf", "slf"}},
		{"(b)", thetas[0], combo{"classification", "roundrobin"}},
		{"(c)", thetas[1], combo{"zipf", "slf"}},
		{"(d)", thetas[1], combo{"classification", "roundrobin"}},
	}
	cfg.emit.Printf("=== Figure 4: rejection rate vs arrival rate, by replication degree ===\n")
	for _, sub := range subplots {
		cfg.emit.Printf("\n--- Fig. 4%s %s, θ=%.2f ---\n", sub.label, sub.c, sub.theta)
		series := make([]exp.Series, 0, len(degrees))
		for _, deg := range degrees {
			ser, err := comboSeries(fmt.Sprintf("deg %.1f", deg), sub.theta, deg, sub.c)
			if err != nil {
				return err
			}
			series = append(series, ser)
		}
		s := cfg.sweep(lambdas, series)
		grid, err := s.Run()
		if err != nil {
			return err
		}
		t := s.Table(grid, "λ (req/min)", exp.RejectionPct,
			append([]string{"λ (req/min)"}, degreeLabels(degrees)...))
		if err := cfg.emit.Table(fmt.Sprintf("fig4%s-%s-theta%.2f", strings.Trim(sub.label, "()"), sub.c, sub.theta), t); err != nil {
			return err
		}
		chart := s.Chart(grid,
			fmt.Sprintf("Fig. 4%s rejection rate (%%) — %s, θ=%.2f", sub.label, sub.c, sub.theta),
			"arrival rate (req/min)", "rejection rate (%)", exp.RejectionPct)
		if err := cfg.emit.Chart(chart); err != nil {
			return err
		}
	}
	return nil
}

// figure5 reproduces Fig. 5: impact of the four algorithm combinations on
// rejection rate at replication degrees 1.2 and 2.0 and two skews.
func figure5(cfg benchConfig) error {
	lambdas := lambdaSweep
	if cfg.quick {
		lambdas = lambdaSweepQuick
	}
	subplots := []struct {
		label  string
		theta  float64
		degree float64
	}{
		{"(a)", thetas[0], 1.2},
		{"(b)", thetas[0], 2.0},
		{"(c)", thetas[1], 1.2},
		{"(d)", thetas[1], 2.0},
	}
	cfg.emit.Printf("\n=== Figure 5: rejection rate vs arrival rate, by algorithm combination ===\n")
	for _, sub := range subplots {
		cfg.emit.Printf("\n--- Fig. 5%s degree %.1f, θ=%.2f ---\n", sub.label, sub.degree, sub.theta)
		series, err := comboSeriesList(sub.theta, sub.degree, fourCombos)
		if err != nil {
			return err
		}
		s := cfg.sweep(lambdas, series)
		grid, err := s.Run()
		if err != nil {
			return err
		}
		t := s.Table(grid, "λ (req/min)", exp.RejectionPct, nil)
		if err := cfg.emit.Table(fmt.Sprintf("fig5%s-deg%.1f-theta%.2f", strings.Trim(sub.label, "()"), sub.degree, sub.theta), t); err != nil {
			return err
		}
		chart := s.Chart(grid,
			fmt.Sprintf("Fig. 5%s rejection rate (%%) — degree %.1f, θ=%.2f", sub.label, sub.degree, sub.theta),
			"arrival rate (req/min)", "rejection rate (%)", exp.RejectionPct)
		if err := cfg.emit.Chart(chart); err != nil {
			return err
		}
	}
	return nil
}

// figure6 reproduces Fig. 6: the measured load imbalance degree L (%) versus
// arrival rate for the four combinations, at θ = 0.75 and degrees 1.2, 2.0.
// The plotted L is the capacity-normalized spread (max_j l_j − l̄)/B, the
// variant whose measured curve traces the paper's shape: rising at light
// load, peaking at mid arrival rates, and collapsing past saturation (see
// EXPERIMENTS.md for the discussion of the normalization choice).
func figure6(cfg benchConfig) error {
	lambdas := lambdaSweep
	if cfg.quick {
		lambdas = lambdaSweepQuick
	}
	subplots := []struct {
		label  string
		degree float64
	}{
		{"(a)", 1.2},
		{"(b)", 2.0},
	}
	cfg.emit.Printf("\n=== Figure 6: load imbalance degree L(%%) vs arrival rate ===\n")
	for _, sub := range subplots {
		cfg.emit.Printf("\n--- Fig. 6%s degree %.1f, θ=%.2f ---\n", sub.label, sub.degree, thetas[0])
		series, err := comboSeriesList(thetas[0], sub.degree, fourCombos)
		if err != nil {
			return err
		}
		s := cfg.sweep(lambdas, series)
		grid, err := s.Run()
		if err != nil {
			return err
		}
		t := s.Table(grid, "λ (req/min)", exp.ImbalanceCapPct, nil)
		if err := cfg.emit.Table(fmt.Sprintf("fig6%s-deg%.1f", strings.Trim(sub.label, "()"), sub.degree), t); err != nil {
			return err
		}
		chart := s.Chart(grid,
			fmt.Sprintf("Fig. 6%s load imbalance L (%%) — degree %.1f, θ=%.2f", sub.label, sub.degree, thetas[0]),
			"arrival rate (req/min)", "L (%)", exp.ImbalanceCapPct)
		if err := cfg.emit.Chart(chart); err != nil {
			return err
		}
	}
	return nil
}

func degreeLabels(degrees []float64) []string {
	out := make([]string, len(degrees))
	for i, d := range degrees {
		out[i] = fmt.Sprintf("deg %.1f (%%)", d)
	}
	return out
}
