package main

import (
	"fmt"

	"vodcluster"
	"vodcluster/internal/analytic"
	"vodcluster/internal/anneal"
	"vodcluster/internal/avail"
	"vodcluster/internal/config"
	"vodcluster/internal/core"
	"vodcluster/internal/disk"
	"vodcluster/internal/dynrep"
	"vodcluster/internal/hierarchy"
	"vodcluster/internal/place"
	"vodcluster/internal/report"
	"vodcluster/internal/sim"
	"vodcluster/internal/stats"
	"vodcluster/internal/striped"
	"vodcluster/internal/workload"
)

// figureAvail exercises the paper's availability motivation (§1, §3.2):
// under server failures, the replication degree buys session survival.
// It reports the measured failure rate (rejected + dropped sessions) per
// degree together with the analytic unavailable-request mass Σ p_i·u^{r_i}.
func figureAvail(cfg benchConfig) error {
	fmt.Println("\n=== Availability: session failure rate vs replication degree under server failures ===")
	f := &avail.FailureModel{MTBF: 10 * core.Hour, MTTR: 30 * core.Minute}
	fmt.Printf("failure model: MTBF %.1f h, MTTR %.0f min → server availability %.4f\n",
		f.MTBF/core.Hour, f.MTTR/core.Minute, f.Availability())
	degrees := degreeSweep
	if cfg.quick {
		degrees = degreeSweepQuick
	}
	t := report.NewTable("degree", "rejected %", "dropped/run", "failure rate %", "analytic unavailable %")
	for _, degree := range degrees {
		s := config.Paper()
		s.Degree = degree
		s.LambdaPerMin = 32 // below saturation so failures, not capacity, dominate
		p, layout, sched, err := vodcluster.Pipeline(s)
		if err != nil {
			return err
		}
		agg, _, err := sim.RunMany(sim.Config{
			Problem: p, Layout: layout, NewScheduler: sched,
			Failures: f, Seed: cfg.seed,
		}, cfg.runs)
		if err != nil {
			return err
		}
		analytic := avail.UnavailableRequestMass(p, layout, f.Unavailability())
		t.AddRowf(degree,
			100*agg.RejectionRate.Mean(),
			agg.Dropped.Mean(),
			100*agg.FailureRate.Mean(),
			100*analytic)
	}
	if err := emitTable(cfg, "availability", t); err != nil {
		return err
	}
	fmt.Println("replication's availability value: the analytic unavailable mass falls")
	fmt.Println("geometrically with the degree, and the measured failure rate follows.")
	return nil
}

// figureDynamic runs the popularity-shift experiment: the layout is planned
// for the initial ranking, the ranking rotates by M/2 halfway through the
// peak period, and runtime dynamic replication (paper §4.1.2, §6) migrates
// replicas over the backbone to chase the new hot set.
func figureDynamic(cfg benchConfig) error {
	fmt.Println("\n=== Dynamic replication under a mid-period popularity shift ===")
	s := config.Paper()
	s.Degree = 1.2
	s.BackboneGbps = 2
	p, layout, _, err := vodcluster.Pipeline(s)
	if err != nil {
		return err
	}
	// Overload slightly so the misplaced layout visibly rejects.
	lambda := 40.0
	gen, err := workload.NewGenerator(workload.NewPoissonPerMinute(lambda), p.M(), s.Theta)
	if err != nil {
		return err
	}

	t := report.NewTable("policy", "rejected %", "± 95% CI", "migrations/run")
	for _, dynamic := range []bool{false, true} {
		var rej, mig stats.Summary
		for run := 0; run < cfg.runs; run++ {
			tr := gen.Generate(p.PeakPeriod, cfg.seed+int64(run))
			shifted, err := tr.Remap(workload.RotationMapping(p.M(), p.M()/2), p.PeakPeriod/2)
			if err != nil {
				return err
			}
			rc := sim.Config{Problem: p, Layout: layout, Trace: shifted, Seed: cfg.seed + int64(run)}
			var mgr *dynrep.Manager
			if dynamic {
				rc.NewController = func() sim.Controller {
					m, err := dynrep.New(p, dynrep.Options{IntervalSec: 300, MaxPerTick: 4})
					if err != nil {
						panic(err)
					}
					mgr = m
					return m
				}
			}
			res, err := sim.Run(rc)
			if err != nil {
				return err
			}
			rej.Add(res.RejectionRate)
			if mgr != nil {
				mig.Add(float64(mgr.Migrations()))
			}
		}
		name := "static layout"
		if dynamic {
			name = "dynamic replication"
		}
		t.AddRowf(name, 100*rej.Mean(), 100*rej.CI95(), mig.Mean())
	}
	return emitTable(cfg, "dynamic-replication", t)
}

// figureDisk checks the paper's modeling assumption that the outgoing
// network link, not disk I/O, binds admission — and shows the striping
// granularity ablation ("striping doesn't scale") on the per-server array.
func figureDisk(cfg benchConfig) error {
	fmt.Println("\n=== Disk subsystem: bottleneck check and striping granularity ===")
	d := disk.Disk{CapacityBytes: 36 * core.GB, SeekMs: 8, TransferMBps: 40}
	round := 2.0 // seconds per retrieval round
	t := report.NewTable("array", "usable GB", "disk streams", "net streams", "bottleneck")
	for _, n := range []int{4, 8, 16} {
		for _, scheme := range []disk.Scheme{disk.RAID0, disk.RAID5} {
			a, err := disk.NewArray(d, n, scheme)
			if err != nil {
				return err
			}
			streams, diskBound := disk.BottleneckStreams(a, 1.8*core.Gbps, 4*core.Mbps, round)
			b := "network"
			if diskBound {
				b = "disk"
			}
			t.AddRowf(fmt.Sprintf("%d× %s (coarse)", n, scheme),
				a.UsableBytes()/core.GB, a.StreamCapacity(4*core.Mbps, round), 450, b)
			_ = streams
		}
	}
	fine, err := disk.NewArray(d, 16, disk.RAID5)
	if err != nil {
		return err
	}
	fine.SetGranularity(disk.FineGrained)
	_, diskBound := disk.BottleneckStreams(fine, 1.8*core.Gbps, 4*core.Mbps, round)
	b := "network"
	if diskBound {
		b = "disk"
	}
	t.AddRowf("16× raid5 (fine)", fine.UsableBytes()/core.GB,
		fine.StreamCapacity(4*core.Mbps, round), 450, b)
	if err := emitTable(cfg, "disk-bottleneck", t); err != nil {
		return err
	}

	// Degraded-mode effect on the simulated cluster: cap each server's
	// concurrent streams at a degraded 8-disk RAID5's capacity.
	a, err := disk.NewArray(d, 8, disk.RAID5)
	if err != nil {
		return err
	}
	if err := a.Fail(0); err != nil {
		return err
	}
	s := config.Paper()
	s.Degree = 1.2
	p, layout, sched, err := vodcluster.Pipeline(s)
	if err != nil {
		return err
	}
	limit := a.StreamCapacity(4*core.Mbps, round)
	t2 := report.NewTable("admission model", "rejected % at λ=40")
	for _, cap := range []int{0, limit} {
		agg, _, err := sim.RunMany(sim.Config{
			Problem: p, Layout: layout, NewScheduler: sched,
			StreamLimit: cap, Seed: cfg.seed,
		}, cfg.runs)
		if err != nil {
			return err
		}
		name := "network only (paper)"
		if cap > 0 {
			name = fmt.Sprintf("degraded RAID5 cap (%d streams)", cap)
		}
		t2.AddRowf(name, 100*agg.RejectionRate.Mean())
	}
	fmt.Println()
	return emitTable(cfg, "disk-admission", t2)
}

// figureHetero evaluates placement on a heterogeneous cluster — the
// generalization the paper's homogeneous model invites. Two hardware tiers
// with crossed resources (bandwidth-rich/space-poor vs the reverse) serve
// the paper workload; the experiment compares the paper's SLF against its
// bandwidth-weighted generalization, the BSR heuristic of Dan & Sitaram that
// the related-work section cites, and round-robin.
func figureHetero(cfg benchConfig) error {
	fmt.Println("\n=== Heterogeneous cluster: placement policies on crossed hardware tiers ===")
	s := config.Paper()
	s.Servers = 8
	// Crossed tiers with the same aggregate resources as the paper cluster:
	// 4 streaming boxes (2.4 Gb/s, 10 replicas) + 4 archive boxes
	// (1.2 Gb/s, 20 replicas) = 14.4 Gb/s and 120 replicas.
	s.ServerBandwidthGbps = []float64{2.4, 2.4, 2.4, 2.4, 1.2, 1.2, 1.2, 1.2}
	s.ServerStorageGB = []float64{27, 27, 27, 27, 54, 54, 54, 54}
	s.Degree = 1.2
	lambdas := []float64{24, 32, 36, 40}
	if cfg.quick {
		lambdas = []float64{32, 40}
	}
	t := report.NewTable(append([]string{"placer", "rel. imbalance"}, lambdaLabels(lambdas)...)...)
	for _, placer := range []string{"slf", "wslf", "bsr", "roundrobin"} {
		s.Placer = placer
		p, layout, sched, err := vodcluster.Pipeline(s)
		if err != nil {
			return fmt.Errorf("hetero %s: %w", placer, err)
		}
		pts, err := vodcluster.SweepArrivalRates(p, layout, sched, lambdas, cfg.runs, cfg.seed)
		if err != nil {
			return err
		}
		row := make([]any, 0, len(lambdas)+2)
		row = append(row, placer, place.RelativeImbalance(p, layout))
		for _, pt := range pts {
			row = append(row, 100*pt.Agg.RejectionRate.Mean())
		}
		t.AddRowf(row...)
	}
	if err := emitTable(cfg, "heterogeneous", t); err != nil {
		return err
	}
	fmt.Println("rejection columns are % at each arrival rate. Both resource-aware")
	fmt.Println("policies (wslf, bsr) dominate the resource-blind ones (slf, roundrobin);")
	fmt.Println("bsr's hot-content-to-fast-server matching additionally shelters the")
	fmt.Println("heaviest replicas from static-RR burstiness, winning on admission.")
	return nil
}

func lambdaLabels(lambdas []float64) []string {
	out := make([]string, len(lambdas))
	for i, l := range lambdas {
		out[i] = fmt.Sprintf("rej%% λ=%g", l)
	}
	return out
}

// figureHierarchy reproduces the predecessor media-mapping experiment
// (Zhou/Lüling/Xie, whose SA the paper's §4.3 reuses): map a catalog onto a
// three-level server tree and compare the root-only, greedy top-popularity,
// and simulated-annealing mappings — globally shared taste and regional
// (per-leaf rotated) taste.
func figureHierarchy(cfg benchConfig) error {
	fmt.Println("\n=== Hierarchical server network: media mapping (predecessor work) ===")
	c, err := core.NewCatalog(100, 0.75, 4*core.Mbps, 90*core.Minute)
	if err != nil {
		return err
	}
	size := c[0].SizeBytes()
	topo, err := hierarchy.NewUniformTree(2, []hierarchy.Node{
		{StorageBytes: 110 * size, StreamBW: 20 * core.Gbps},
		{StorageBytes: 30 * size, StreamBW: 4 * core.Gbps, UplinkBW: 4 * core.Gbps},
		{StorageBytes: 12 * size, StreamBW: 2 * core.Gbps, UplinkBW: 2 * core.Gbps},
	})
	if err != nil {
		return err
	}
	rates := make([]float64, len(topo.Leaves()))
	for i := range rates {
		rates[i] = 5.0 / core.Minute
	}

	for _, regional := range []bool{false, true} {
		p := &hierarchy.Problem{Topo: topo, Catalog: c, LeafRate: rates}
		label := "global taste"
		if regional {
			label = "regional taste (per-leaf rotated ranking)"
			pops := make([][]float64, len(rates))
			for li := range pops {
				pops[li] = make([]float64, len(c))
				for v := range c {
					pops[li][v] = c[(v+li*25)%len(c)].Popularity
				}
			}
			p.LeafPopularity = pops
		}
		if err := p.Validate(); err != nil {
			return err
		}

		opts := anneal.DefaultOptions()
		opts.InitialTemp = 0.5
		opts.Seed = cfg.seed
		chains := 4
		if cfg.quick {
			opts.MaxSteps = 15_000
			chains = 1
		}
		best, saEval, err := hierarchy.Optimize(p, opts, chains)
		if err != nil {
			return err
		}
		_ = best

		t := report.NewTable("mapping", "local hit %", "mean hops", "max link util", "max node util")
		for _, row := range []struct {
			name string
			e    hierarchy.Eval
		}{
			{"root only", p.Evaluate(hierarchy.NewMapping(p))},
			{"greedy top-popularity", p.Evaluate(hierarchy.GreedyMapping(p))},
			{"simulated annealing", saEval},
		} {
			t.AddRowf(row.name, 100*row.e.LocalHitRatio, row.e.MeanHops, row.e.MaxLinkUtil, row.e.MaxNodeUtil)
		}
		name := "hierarchy-global"
		if regional {
			name = "hierarchy-regional"
		}
		fmt.Printf("\n--- %s ---\n", label)
		if err := emitTable(cfg, name, t); err != nil {
			return err
		}
	}
	fmt.Println("\nthe SA mapping removes the duplication the greedy baseline creates along")
	fmt.Println("every root-leaf path and specializes leaf caches under regional taste.")
	return nil
}

// figureStriping quantifies the §1 architectural argument: wide striping
// across servers balances perfectly (beating replication on rejection while
// healthy) but fails catastrophically, while the replicated cluster degrades
// gracefully. Failure intensity sweeps from none to harsh.
func figureStriping(cfg benchConfig) error {
	fmt.Println("\n=== §1: replication vs wide striping across servers ===")
	s := config.Paper()
	s.Degree = 1.4
	p, layout, sched, err := vodcluster.Pipeline(s)
	if err != nil {
		return err
	}
	q := p.Clone()
	q.ArrivalRate = 36.0 / core.Minute // 90% of saturation

	models := []struct {
		name string
		f    *avail.FailureModel
	}{
		{"no failures", nil},
		{"MTBF 20h", &avail.FailureModel{MTBF: 20 * core.Hour, MTTR: 30 * core.Minute}},
		{"MTBF 5h", &avail.FailureModel{MTBF: 5 * core.Hour, MTTR: 30 * core.Minute}},
	}
	t := report.NewTable("failure model", "replication fail %", "plain striping fail %", "parity striping fail %")
	for _, m := range models {
		var rep, plain, parity stats.Summary
		for run := 0; run < cfg.runs; run++ {
			seed := cfg.seed + int64(run)
			rres, err := sim.Run(sim.Config{Problem: q, Layout: layout, NewScheduler: sched, Failures: m.f, Seed: seed})
			if err != nil {
				return err
			}
			rep.Add(rres.FailureRate)
			pres, err := striped.Run(striped.Config{Problem: q, Scheme: striped.Plain, Failures: m.f, Seed: seed})
			if err != nil {
				return err
			}
			plain.Add(pres.FailureRate)
			xres, err := striped.Run(striped.Config{Problem: q, Scheme: striped.Parity, Failures: m.f, Seed: seed})
			if err != nil {
				return err
			}
			parity.Add(xres.FailureRate)
		}
		t.AddRowf(m.name, 100*rep.Mean(), 100*plain.Mean(), 100*parity.Mean())
	}
	if err := emitTable(cfg, "striping-vs-replication", t); err != nil {
		return err
	}
	fmt.Println("healthy: striping's pooled bandwidth wins. Failing: plain striping's")
	fmt.Println("catalog goes dark with any server, parity pays half its pool in degraded")
	fmt.Println("mode — the replicated cluster degrades most gracefully, the paper's case.")
	return nil
}

// figureErlang validates the simulator against queueing theory: Erlang-B is
// exact for the pooled (striped) cluster and a per-server approximation for
// the replicated one. Long warmed-up runs must converge to the predictions.
func figureErlang(cfg benchConfig) error {
	fmt.Println("\n=== Validation: simulator vs Erlang-B loss formula ===")
	s := config.Paper()
	s.Degree = 1.4
	p, layout, sched, err := vodcluster.Pipeline(s)
	if err != nil {
		return err
	}
	lambdas := []float64{38, 40, 42, 44}
	if cfg.quick {
		lambdas = []float64{40, 44}
	}
	t := report.NewTable("λ (req/min)", "Erlang-B pooled %", "striped sim %", "Erlang-B per-server %", "replicated sim %")
	for _, lam := range lambdas {
		q := p.Clone()
		q.ArrivalRate = lam / core.Minute
		pooled, err := analytic.PooledBlocking(q)
		if err != nil {
			return err
		}
		perServer, err := analytic.ReplicatedBlocking(q, layout)
		if err != nil {
			return err
		}
		var stripedSim, replSim stats.Summary
		runs := cfg.runs
		if runs > 8 {
			runs = 8 // long-horizon runs: keep the total cost bounded
		}
		for i := 0; i < runs; i++ {
			sres, err := striped.Run(striped.Config{Problem: q, Duration: 6 * q.PeakPeriod, Seed: cfg.seed + int64(i)})
			if err != nil {
				return err
			}
			stripedSim.Add(sres.RejectionRate)
			rres, err := sim.Run(sim.Config{
				Problem: q, Layout: layout, NewScheduler: sched,
				Duration: 6 * q.PeakPeriod, Warmup: q.PeakPeriod, Seed: cfg.seed + int64(i),
			})
			if err != nil {
				return err
			}
			replSim.Add(rres.RejectionRate)
		}
		t.AddRowf(lam, 100*pooled, 100*stripedSim.Mean(), 100*perServer, 100*replSim.Mean())
	}
	if err := emitTable(cfg, "erlang-validation", t); err != nil {
		return err
	}
	fmt.Println("Erlang-B is exact for the pooled system (insensitivity makes the fixed")
	fmt.Println("session length irrelevant); the per-server product form approximates the")
	fmt.Println("replicated cluster under static RR, erring slightly high.")
	return nil
}
