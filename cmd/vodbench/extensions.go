package main

import (
	"fmt"

	"vodcluster"
	"vodcluster/internal/analytic"
	"vodcluster/internal/anneal"
	"vodcluster/internal/avail"
	"vodcluster/internal/config"
	"vodcluster/internal/core"
	"vodcluster/internal/disk"
	"vodcluster/internal/dynrep"
	"vodcluster/internal/exp"
	"vodcluster/internal/hierarchy"
	"vodcluster/internal/place"
	"vodcluster/internal/report"
	"vodcluster/internal/sim"
	"vodcluster/internal/stats"
	"vodcluster/internal/striped"
	"vodcluster/internal/workload"
)

// figureAvail exercises the paper's availability motivation (§1, §3.2):
// under server failures, the replication degree buys session survival.
// It reports the measured failure rate (rejected + dropped sessions) per
// degree together with the analytic unavailable-request mass Σ p_i·u^{r_i}.
func figureAvail(cfg benchConfig) error {
	cfg.emit.Printf("\n=== Availability: session failure rate vs replication degree under server failures ===\n")
	f := &avail.FailureModel{MTBF: 10 * core.Hour, MTTR: 30 * core.Minute}
	cfg.emit.Printf("failure model: MTBF %.1f h, MTTR %.0f min → server availability %.4f\n",
		f.MTBF/core.Hour, f.MTTR/core.Minute, f.Availability())
	degrees := degreeSweep
	if cfg.quick {
		degrees = degreeSweepQuick
	}
	// The analytic column needs each degree's problem and layout; Config runs
	// on the coordinating goroutine in x order, so stashing them is safe.
	type cell struct {
		p      *core.Problem
		layout *core.Layout
	}
	cells := make([]cell, 0, len(degrees))
	ser := exp.Series{Name: "availability", Config: func(degree float64) (sim.Config, error) {
		s := config.Paper()
		s.Degree = degree
		s.LambdaPerMin = 32 // below saturation so failures, not capacity, dominate
		p, layout, sched, err := vodcluster.Pipeline(s)
		if err != nil {
			return sim.Config{}, err
		}
		cells = append(cells, cell{p, layout})
		return sim.Config{Problem: p, Layout: layout, NewScheduler: sched, Failures: f}, nil
	}}
	sw := cfg.sweep(degrees, []exp.Series{ser})
	// Every degree runs against the same workload and failure draws: the
	// pre-harness loop passed one seed to each degree's replications.
	sw.PointSeed = func(int) int64 { return cfg.seed }
	grid, err := sw.Run()
	if err != nil {
		return err
	}
	t := report.NewTable("degree", "rejected %", "dropped/run", "failure rate %", "analytic unavailable %")
	for xi, degree := range degrees {
		pt := grid[0][xi]
		analytic := avail.UnavailableRequestMass(cells[xi].p, cells[xi].layout, f.Unavailability())
		t.AddRowf(degree,
			exp.RejectionPct(pt),
			pt.Agg.Dropped.Mean(),
			exp.FailurePct(pt),
			100*analytic)
	}
	if err := cfg.emit.Table("availability", t); err != nil {
		return err
	}
	cfg.emit.Printf("replication's availability value: the analytic unavailable mass falls\n")
	cfg.emit.Printf("geometrically with the degree, and the measured failure rate follows.\n")
	return nil
}

// figureDynamic runs the popularity-shift experiment: the layout is planned
// for the initial ranking, the ranking rotates by M/2 halfway through the
// peak period, and runtime dynamic replication (paper §4.1.2, §6) migrates
// replicas over the backbone to chase the new hot set.
func figureDynamic(cfg benchConfig) error {
	cfg.emit.Printf("\n=== Dynamic replication under a mid-period popularity shift ===\n")
	s := config.Paper()
	s.Degree = 1.2
	s.BackboneGbps = 2
	p, layout, _, err := vodcluster.Pipeline(s)
	if err != nil {
		return err
	}
	// Overload slightly so the misplaced layout visibly rejects.
	lambda := 40.0
	gen, err := workload.NewGenerator(workload.NewPoissonPerMinute(lambda), p.M(), s.Theta)
	if err != nil {
		return err
	}
	newManager, err := dynrep.NewFactory(p, dynrep.Options{IntervalSec: 300, MaxPerTick: 4})
	if err != nil {
		return err
	}

	// The experiment replays one shifted trace per run index, so the swept x
	// is the run index itself and each point is a single replication. Both
	// policies replay identical traces (common random numbers); the sim seed
	// is irrelevant under trace replay without failures or resilience.
	runIdx := make([]float64, cfg.runs)
	for i := range runIdx {
		runIdx[i] = float64(i)
	}
	mgrs := make([]*dynrep.Manager, cfg.runs)
	series := make([]exp.Series, 0, 2)
	for _, dynamic := range []bool{false, true} {
		dynamic := dynamic
		name := "static layout"
		if dynamic {
			name = "dynamic replication"
		}
		series = append(series, exp.Series{Name: name, Config: func(x float64) (sim.Config, error) {
			run := int(x)
			tr := gen.Generate(p.PeakPeriod, cfg.seed+int64(run))
			shifted, err := tr.Remap(workload.RotationMapping(p.M(), p.M()/2), p.PeakPeriod/2)
			if err != nil {
				return sim.Config{}, err
			}
			rc := sim.Config{Problem: p, Layout: layout, Trace: shifted}
			if dynamic {
				rc.NewController = func() sim.Controller {
					m := newManager()
					mgrs[run] = m
					return m
				}
			}
			return rc, nil
		}})
	}
	sw := cfg.sweep(runIdx, series)
	sw.Runs = 1
	grid, err := sw.Run()
	if err != nil {
		return err
	}

	t := report.NewTable("policy", "rejected %", "± 95% CI", "migrations/run")
	for si, ser := range series {
		var rej, mig stats.Summary
		for xi := range runIdx {
			rej.Add(grid[si][xi].Results[0].RejectionRate)
		}
		if ser.Name == "dynamic replication" {
			for _, m := range mgrs {
				mig.Add(float64(m.Migrations()))
			}
		}
		t.AddRowf(ser.Name, 100*rej.Mean(), 100*rej.CI95(), mig.Mean())
	}
	return cfg.emit.Table("dynamic-replication", t)
}

// figureDisk checks the paper's modeling assumption that the outgoing
// network link, not disk I/O, binds admission — and shows the striping
// granularity ablation ("striping doesn't scale") on the per-server array.
func figureDisk(cfg benchConfig) error {
	cfg.emit.Printf("\n=== Disk subsystem: bottleneck check and striping granularity ===\n")
	d := disk.Disk{CapacityBytes: 36 * core.GB, SeekMs: 8, TransferMBps: 40}
	round := 2.0 // seconds per retrieval round
	t := report.NewTable("array", "usable GB", "disk streams", "net streams", "bottleneck")
	for _, n := range []int{4, 8, 16} {
		for _, scheme := range []disk.Scheme{disk.RAID0, disk.RAID5} {
			a, err := disk.NewArray(d, n, scheme)
			if err != nil {
				return err
			}
			streams, diskBound := disk.BottleneckStreams(a, 1.8*core.Gbps, 4*core.Mbps, round)
			b := "network"
			if diskBound {
				b = "disk"
			}
			t.AddRowf(fmt.Sprintf("%d× %s (coarse)", n, scheme),
				a.UsableBytes()/core.GB, a.StreamCapacity(4*core.Mbps, round), 450, b)
			_ = streams
		}
	}
	fine, err := disk.NewArray(d, 16, disk.RAID5)
	if err != nil {
		return err
	}
	fine.SetGranularity(disk.FineGrained)
	_, diskBound := disk.BottleneckStreams(fine, 1.8*core.Gbps, 4*core.Mbps, round)
	b := "network"
	if diskBound {
		b = "disk"
	}
	t.AddRowf("16× raid5 (fine)", fine.UsableBytes()/core.GB,
		fine.StreamCapacity(4*core.Mbps, round), 450, b)
	if err := cfg.emit.Table("disk-bottleneck", t); err != nil {
		return err
	}

	// Degraded-mode effect on the simulated cluster: cap each server's
	// concurrent streams at a degraded 8-disk RAID5's capacity.
	a, err := disk.NewArray(d, 8, disk.RAID5)
	if err != nil {
		return err
	}
	if err := a.Fail(0); err != nil {
		return err
	}
	s := config.Paper()
	s.Degree = 1.2
	p, layout, sched, err := vodcluster.Pipeline(s)
	if err != nil {
		return err
	}
	limit := a.StreamCapacity(4*core.Mbps, round)
	ser := exp.Series{Name: "admission", Config: func(cap float64) (sim.Config, error) {
		return sim.Config{
			Problem: p, Layout: layout, NewScheduler: sched,
			StreamLimit: int(cap),
		}, nil
	}}
	sw := cfg.sweep([]float64{0, float64(limit)}, []exp.Series{ser})
	sw.PointSeed = func(int) int64 { return cfg.seed } // same workload either way
	grid, err := sw.Run()
	if err != nil {
		return err
	}
	t2 := report.NewTable("admission model", "rejected % at λ=40")
	for xi, pt := range grid[0] {
		name := "network only (paper)"
		if xi > 0 {
			name = fmt.Sprintf("degraded RAID5 cap (%d streams)", limit)
		}
		t2.AddRowf(name, exp.RejectionPct(pt))
	}
	cfg.emit.Printf("\n")
	return cfg.emit.Table("disk-admission", t2)
}

// figureHetero evaluates placement on a heterogeneous cluster — the
// generalization the paper's homogeneous model invites. Two hardware tiers
// with crossed resources (bandwidth-rich/space-poor vs the reverse) serve
// the paper workload; the experiment compares the paper's SLF against its
// bandwidth-weighted generalization, the BSR heuristic of Dan & Sitaram that
// the related-work section cites, and round-robin.
func figureHetero(cfg benchConfig) error {
	cfg.emit.Printf("\n=== Heterogeneous cluster: placement policies on crossed hardware tiers ===\n")
	s := config.Paper()
	s.Servers = 8
	// Crossed tiers with the same aggregate resources as the paper cluster:
	// 4 streaming boxes (2.4 Gb/s, 10 replicas) + 4 archive boxes
	// (1.2 Gb/s, 20 replicas) = 14.4 Gb/s and 120 replicas.
	s.ServerBandwidthGbps = []float64{2.4, 2.4, 2.4, 2.4, 1.2, 1.2, 1.2, 1.2}
	s.ServerStorageGB = []float64{27, 27, 27, 27, 54, 54, 54, 54}
	s.Degree = 1.2
	lambdas := []float64{24, 32, 36, 40}
	if cfg.quick {
		lambdas = []float64{32, 40}
	}
	placers := []string{"slf", "wslf", "bsr", "roundrobin"}
	relImb := make([]float64, 0, len(placers))
	series := make([]exp.Series, 0, len(placers))
	for _, placer := range placers {
		s.Placer = placer
		p, layout, sched, err := vodcluster.Pipeline(s)
		if err != nil {
			return fmt.Errorf("hetero %s: %w", placer, err)
		}
		relImb = append(relImb, place.RelativeImbalance(p, layout))
		series = append(series, lambdaSeries(placer, p, layout, sched))
	}
	grid, err := cfg.sweep(lambdas, series).Run()
	if err != nil {
		return err
	}
	t := report.NewTable(append([]string{"placer", "rel. imbalance"}, lambdaLabels(lambdas)...)...)
	for si, placer := range placers {
		row := make([]any, 0, len(lambdas)+2)
		row = append(row, placer, relImb[si])
		for xi := range lambdas {
			row = append(row, exp.RejectionPct(grid[si][xi]))
		}
		t.AddRowf(row...)
	}
	if err := cfg.emit.Table("heterogeneous", t); err != nil {
		return err
	}
	cfg.emit.Printf("rejection columns are %% at each arrival rate. Both resource-aware\n")
	cfg.emit.Printf("policies (wslf, bsr) dominate the resource-blind ones (slf, roundrobin);\n")
	cfg.emit.Printf("bsr's hot-content-to-fast-server matching additionally shelters the\n")
	cfg.emit.Printf("heaviest replicas from static-RR burstiness, winning on admission.\n")
	return nil
}

func lambdaLabels(lambdas []float64) []string {
	out := make([]string, len(lambdas))
	for i, l := range lambdas {
		out[i] = fmt.Sprintf("rej%% λ=%g", l)
	}
	return out
}

// figureHierarchy reproduces the predecessor media-mapping experiment
// (Zhou/Lüling/Xie, whose SA the paper's §4.3 reuses): map a catalog onto a
// three-level server tree and compare the root-only, greedy top-popularity,
// and simulated-annealing mappings — globally shared taste and regional
// (per-leaf rotated) taste.
func figureHierarchy(cfg benchConfig) error {
	cfg.emit.Printf("\n=== Hierarchical server network: media mapping (predecessor work) ===\n")
	c, err := core.NewCatalog(100, 0.75, 4*core.Mbps, 90*core.Minute)
	if err != nil {
		return err
	}
	size := c[0].SizeBytes()
	topo, err := hierarchy.NewUniformTree(2, []hierarchy.Node{
		{StorageBytes: 110 * size, StreamBW: 20 * core.Gbps},
		{StorageBytes: 30 * size, StreamBW: 4 * core.Gbps, UplinkBW: 4 * core.Gbps},
		{StorageBytes: 12 * size, StreamBW: 2 * core.Gbps, UplinkBW: 2 * core.Gbps},
	})
	if err != nil {
		return err
	}
	rates := make([]float64, len(topo.Leaves()))
	for i := range rates {
		rates[i] = 5.0 / core.Minute
	}

	for _, regional := range []bool{false, true} {
		p := &hierarchy.Problem{Topo: topo, Catalog: c, LeafRate: rates}
		label := "global taste"
		if regional {
			label = "regional taste (per-leaf rotated ranking)"
			pops := make([][]float64, len(rates))
			for li := range pops {
				pops[li] = make([]float64, len(c))
				for v := range c {
					pops[li][v] = c[(v+li*25)%len(c)].Popularity
				}
			}
			p.LeafPopularity = pops
		}
		if err := p.Validate(); err != nil {
			return err
		}

		opts := anneal.DefaultOptions()
		opts.InitialTemp = 0.5
		opts.Seed = cfg.seed
		chains := 4
		if cfg.quick {
			opts.MaxSteps = 15_000
			chains = 1
		}
		best, saEval, err := hierarchy.Optimize(p, opts, chains)
		if err != nil {
			return err
		}
		_ = best

		t := report.NewTable("mapping", "local hit %", "mean hops", "max link util", "max node util")
		for _, row := range []struct {
			name string
			e    hierarchy.Eval
		}{
			{"root only", p.Evaluate(hierarchy.NewMapping(p))},
			{"greedy top-popularity", p.Evaluate(hierarchy.GreedyMapping(p))},
			{"simulated annealing", saEval},
		} {
			t.AddRowf(row.name, 100*row.e.LocalHitRatio, row.e.MeanHops, row.e.MaxLinkUtil, row.e.MaxNodeUtil)
		}
		name := "hierarchy-global"
		if regional {
			name = "hierarchy-regional"
		}
		cfg.emit.Printf("\n--- %s ---\n", label)
		if err := cfg.emit.Table(name, t); err != nil {
			return err
		}
	}
	cfg.emit.Printf("\nthe SA mapping removes the duplication the greedy baseline creates along\n")
	cfg.emit.Printf("every root-leaf path and specializes leaf caches under regional taste.\n")
	return nil
}

// figureStriping quantifies the §1 architectural argument: wide striping
// across servers balances perfectly (beating replication on rejection while
// healthy) but fails catastrophically, while the replicated cluster degrades
// gracefully. Failure intensity sweeps from none to harsh. The striped
// simulator is its own engine (internal/striped), so this figure keeps its
// replication loop instead of the sim-only exp harness.
func figureStriping(cfg benchConfig) error {
	cfg.emit.Printf("\n=== §1: replication vs wide striping across servers ===\n")
	s := config.Paper()
	s.Degree = 1.4
	p, layout, sched, err := vodcluster.Pipeline(s)
	if err != nil {
		return err
	}
	q := p.Clone()
	q.ArrivalRate = 36.0 / core.Minute // 90% of saturation

	models := []struct {
		name string
		f    *avail.FailureModel
	}{
		{"no failures", nil},
		{"MTBF 20h", &avail.FailureModel{MTBF: 20 * core.Hour, MTTR: 30 * core.Minute}},
		{"MTBF 5h", &avail.FailureModel{MTBF: 5 * core.Hour, MTTR: 30 * core.Minute}},
	}
	t := report.NewTable("failure model", "replication fail %", "plain striping fail %", "parity striping fail %")
	for _, m := range models {
		var rep, plain, parity stats.Summary
		for run := 0; run < cfg.runs; run++ {
			seed := cfg.seed + int64(run)
			rres, err := sim.Run(sim.Config{Problem: q, Layout: layout, NewScheduler: sched, Failures: m.f, Seed: seed})
			if err != nil {
				return err
			}
			rep.Add(rres.FailureRate)
			pres, err := striped.Run(striped.Config{Problem: q, Scheme: striped.Plain, Failures: m.f, Seed: seed})
			if err != nil {
				return err
			}
			plain.Add(pres.FailureRate)
			xres, err := striped.Run(striped.Config{Problem: q, Scheme: striped.Parity, Failures: m.f, Seed: seed})
			if err != nil {
				return err
			}
			parity.Add(xres.FailureRate)
		}
		t.AddRowf(m.name, 100*rep.Mean(), 100*plain.Mean(), 100*parity.Mean())
	}
	if err := cfg.emit.Table("striping-vs-replication", t); err != nil {
		return err
	}
	cfg.emit.Printf("healthy: striping's pooled bandwidth wins. Failing: plain striping's\n")
	cfg.emit.Printf("catalog goes dark with any server, parity pays half its pool in degraded\n")
	cfg.emit.Printf("mode — the replicated cluster degrades most gracefully, the paper's case.\n")
	return nil
}

// figureErlang validates the simulator against queueing theory: Erlang-B is
// exact for the pooled (striped) cluster and a per-server approximation for
// the replicated one. Long warmed-up runs must converge to the predictions.
// Like figureStriping, it drives the striped engine alongside sim, so the
// per-λ loop stays.
func figureErlang(cfg benchConfig) error {
	cfg.emit.Printf("\n=== Validation: simulator vs Erlang-B loss formula ===\n")
	s := config.Paper()
	s.Degree = 1.4
	p, layout, sched, err := vodcluster.Pipeline(s)
	if err != nil {
		return err
	}
	lambdas := []float64{38, 40, 42, 44}
	if cfg.quick {
		lambdas = []float64{40, 44}
	}
	t := report.NewTable("λ (req/min)", "Erlang-B pooled %", "striped sim %", "Erlang-B per-server %", "replicated sim %")
	for _, lam := range lambdas {
		q := p.Clone()
		q.ArrivalRate = lam / core.Minute
		pooled, err := analytic.PooledBlocking(q)
		if err != nil {
			return err
		}
		perServer, err := analytic.ReplicatedBlocking(q, layout)
		if err != nil {
			return err
		}
		var stripedSim, replSim stats.Summary
		runs := cfg.runs
		if runs > 8 {
			runs = 8 // long-horizon runs: keep the total cost bounded
		}
		for i := 0; i < runs; i++ {
			sres, err := striped.Run(striped.Config{Problem: q, Duration: 6 * q.PeakPeriod, Seed: cfg.seed + int64(i)})
			if err != nil {
				return err
			}
			stripedSim.Add(sres.RejectionRate)
			rres, err := sim.Run(sim.Config{
				Problem: q, Layout: layout, NewScheduler: sched,
				Duration: 6 * q.PeakPeriod, Warmup: q.PeakPeriod, Seed: cfg.seed + int64(i),
			})
			if err != nil {
				return err
			}
			replSim.Add(rres.RejectionRate)
		}
		t.AddRowf(lam, 100*pooled, 100*stripedSim.Mean(), 100*perServer, 100*replSim.Mean())
	}
	if err := cfg.emit.Table("erlang-validation", t); err != nil {
		return err
	}
	cfg.emit.Printf("Erlang-B is exact for the pooled system (insensitivity makes the fixed\n")
	cfg.emit.Printf("session length irrelevant); the per-server product form approximates the\n")
	cfg.emit.Printf("replicated cluster under static RR, erring slightly high.\n")
	return nil
}
