// Command vodbench regenerates the paper's evaluation figures on the
// simulated cluster and prints each as a table plus an ASCII chart, so the
// reproduced curve shapes can be compared with the paper directly.
//
//	vodbench -fig 4        # Fig. 4: rejection rate vs λ per replication degree
//	vodbench -fig 5        # Fig. 5: rejection rate vs λ per algorithm combo
//	vodbench -fig 6        # Fig. 6: load imbalance L(%) vs λ per combo
//	vodbench -fig sa       # §4.3: simulated annealing for scalable bit rates
//	vodbench -fig sens     # §5.2: sensitivity to M, N, and bit rate
//	vodbench -fig redirect # §6: request redirection over the backbone
//	vodbench -fig avail    # availability: failures vs replication degree
//	vodbench -fig dynamic  # runtime dynamic replication under a popularity shift
//	vodbench -fig disk     # disk subsystem: bottleneck + striping granularity
//	vodbench -fig hetero   # heterogeneous cluster placement policies
//	vodbench -fig hier     # hierarchical server network media mapping
//	vodbench -fig striping # replication vs wide striping under failures
//	vodbench -fig erlang   # simulator validation against the Erlang-B loss formula
//	vodbench -fig all      # everything
//
// Use -quick for a fast low-replication pass, -runs to set the number of
// simulation replications per point, and -workers to bound the parallel
// simulations (0 = GOMAXPROCS). Sweeps run on the internal/exp harness, so
// results are identical for every -workers value at the same seed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"vodcluster/internal/exp"
	"vodcluster/internal/obs"
)

// benchConfig carries the shared harness knobs into each figure generator.
type benchConfig struct {
	runs    int
	seed    int64
	quick   bool
	workers int
	emit    *exp.Emitter
	// Annealing overrides for the §4.3 runner (-fig sa): 0 / 0 / -1 mean
	// "use the figure's own schedule".
	annealSteps  int
	annealChains int
	annealSeed   int64
}

// figures maps -fig values to generators, in the order -fig all runs them.
var figures = []struct {
	name string
	gen  func(benchConfig) error
}{
	{"4", figure4},
	{"5", figure5},
	{"6", figure6},
	{"sa", figureSA},
	{"sens", figureSensitivity},
	{"redirect", figureRedirect},
	{"avail", figureAvail},
	{"dynamic", figureDynamic},
	{"disk", figureDisk},
	{"hetero", figureHetero},
	{"hier", figureHierarchy},
	{"striping", figureStriping},
	{"erlang", figureErlang},
}

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: 4|5|6|sa|sens|redirect|avail|dynamic|disk|hetero|hier|striping|erlang|all")
	runs := flag.Int("runs", 20, "simulation replications per data point")
	seed := flag.Int64("seed", 42, "master random seed")
	quick := flag.Bool("quick", false, "coarser sweeps and fewer runs, for a fast look")
	csvDir := flag.String("csv", "", "also write every table as CSV into this directory")
	workers := flag.Int("workers", 0, "parallel simulations across each sweep; 0 = GOMAXPROCS, 1 = sequential")
	timing := flag.String("timing", "", "write a JSON wall-clock record of the invoked figure(s) to this file")
	annealSteps := flag.Int("anneal-steps", 0, "§4.3 annealer: cap proposals per chain (0 = figure default)")
	annealChains := flag.Int("anneal-chains", 0, "§4.3 annealer: parallel independent chains (0 = figure default)")
	annealSeed := flag.Int64("anneal-seed", -1, "§4.3 annealer: seed override (-1 = use -seed)")
	flag.Parse()

	cfg := benchConfig{
		runs:         *runs,
		seed:         *seed,
		quick:        *quick,
		workers:      *workers,
		emit:         &exp.Emitter{CSVDir: *csvDir},
		annealSteps:  *annealSteps,
		annealChains: *annealChains,
		annealSeed:   *annealSeed,
	}
	if cfg.quick && cfg.runs > 5 {
		cfg.runs = 5
	}

	start := time.Now()
	err := runFigure(*fig, cfg)
	elapsed := time.Since(start)
	if err == nil && *timing != "" {
		err = writeTiming(*timing, *fig, cfg, elapsed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vodbench:", err)
		os.Exit(1)
	}
}

func runFigure(fig string, cfg benchConfig) error {
	if fig == "all" {
		for _, f := range figures {
			if err := f.gen(cfg); err != nil {
				return err
			}
		}
		return nil
	}
	for _, f := range figures {
		if f.name == fig {
			return f.gen(cfg)
		}
	}
	return fmt.Errorf("unknown figure %q", fig)
}

// writeTiming records the wall clock of the figure run as JSON, so sweep
// performance stays comparable across revisions (see BENCH_sweep.json). The
// embedded manifest pins the environment the number came from.
func writeTiming(path, fig string, cfg benchConfig, elapsed time.Duration) error {
	man := obs.NewManifest()
	man.Seed = cfg.seed
	man.Flags = map[string]string{
		"fig":     fig,
		"runs":    fmt.Sprint(cfg.runs),
		"quick":   fmt.Sprint(cfg.quick),
		"workers": fmt.Sprint(cfg.workers),
	}
	rec := struct {
		Figure       string       `json:"figure"`
		Manifest     obs.Manifest `json:"manifest"`
		Runs         int          `json:"runs"`
		Seed         int64        `json:"seed"`
		Quick        bool         `json:"quick"`
		Workers      int          `json:"workers"`
		GOMAXPROCS   int          `json:"gomaxprocs"`
		WallClockSec float64      `json:"wall_clock_sec"`
	}{fig, man, cfg.runs, cfg.seed, cfg.quick, cfg.workers, runtime.GOMAXPROCS(0), elapsed.Seconds()}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
