// Command vodbench regenerates the paper's evaluation figures on the
// simulated cluster and prints each as a table plus an ASCII chart, so the
// reproduced curve shapes can be compared with the paper directly.
//
//	vodbench -fig 4        # Fig. 4: rejection rate vs λ per replication degree
//	vodbench -fig 5        # Fig. 5: rejection rate vs λ per algorithm combo
//	vodbench -fig 6        # Fig. 6: load imbalance L(%) vs λ per combo
//	vodbench -fig sa       # §4.3: simulated annealing for scalable bit rates
//	vodbench -fig sens     # §5.2: sensitivity to M, N, and bit rate
//	vodbench -fig redirect # §6: request redirection over the backbone
//	vodbench -fig avail    # availability: failures vs replication degree
//	vodbench -fig dynamic  # runtime dynamic replication under a popularity shift
//	vodbench -fig disk     # disk subsystem: bottleneck + striping granularity
//	vodbench -fig hetero   # heterogeneous cluster placement policies
//	vodbench -fig hier     # hierarchical server network media mapping
//	vodbench -fig striping # replication vs wide striping under failures
//	vodbench -fig erlang   # simulator validation against the Erlang-B loss formula
//	vodbench -fig all      # everything
//
// Use -quick for a fast low-replication pass and -runs to set the number of
// simulation replications per point.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"vodcluster/internal/report"
)

// benchConfig carries the shared harness knobs into each figure generator.
type benchConfig struct {
	runs   int
	seed   int64
	quick  bool
	csvDir string
}

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: 4|5|6|sa|sens|redirect|avail|dynamic|disk|hetero|hier|striping|erlang|all")
	runs := flag.Int("runs", 20, "simulation replications per data point")
	seed := flag.Int64("seed", 42, "master random seed")
	quick := flag.Bool("quick", false, "coarser sweeps and fewer runs, for a fast look")
	csvDir := flag.String("csv", "", "also write every table as CSV into this directory")
	flag.Parse()

	cfg := benchConfig{runs: *runs, seed: *seed, quick: *quick, csvDir: *csvDir}
	if cfg.quick && cfg.runs > 5 {
		cfg.runs = 5
	}

	var err error
	switch *fig {
	case "4":
		err = figure4(cfg)
	case "5":
		err = figure5(cfg)
	case "6":
		err = figure6(cfg)
	case "sa":
		err = figureSA(cfg)
	case "sens":
		err = figureSensitivity(cfg)
	case "redirect":
		err = figureRedirect(cfg)
	case "avail":
		err = figureAvail(cfg)
	case "dynamic":
		err = figureDynamic(cfg)
	case "disk":
		err = figureDisk(cfg)
	case "hetero":
		err = figureHetero(cfg)
	case "hier":
		err = figureHierarchy(cfg)
	case "striping":
		err = figureStriping(cfg)
	case "erlang":
		err = figureErlang(cfg)
	case "all":
		for _, f := range []func(benchConfig) error{
			figure4, figure5, figure6, figureSA, figureSensitivity,
			figureRedirect, figureAvail, figureDynamic, figureDisk, figureHetero, figureHierarchy, figureStriping, figureErlang,
		} {
			if err = f(cfg); err != nil {
				break
			}
		}
	default:
		err = fmt.Errorf("unknown figure %q", *fig)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vodbench:", err)
		os.Exit(1)
	}
}

// emitTable prints a table to stdout and, when -csv is set, also writes it
// to <csvDir>/<name>.csv so sweeps can be post-processed or plotted outside
// the terminal.
func emitTable(cfg benchConfig, name string, t *report.Table) error {
	if err := t.Fprint(os.Stdout); err != nil {
		return err
	}
	if cfg.csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(cfg.csvDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(cfg.csvDir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.CSV(f)
}
