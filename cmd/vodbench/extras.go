package main

import (
	"fmt"

	"vodcluster"
	"vodcluster/internal/anneal"
	"vodcluster/internal/cluster"
	"vodcluster/internal/config"
	"vodcluster/internal/core"
	"vodcluster/internal/exp"
	"vodcluster/internal/report"
	"vodcluster/internal/sim"
)

// lambdaSeries wraps a built pipeline as a sweep series over the arrival
// rate in requests/minute — the x-axis every paper figure sweeps.
func lambdaSeries(name string, p *core.Problem, layout *core.Layout, sched func() cluster.Scheduler) exp.Series {
	return exp.Series{Name: name, Config: func(lam float64) (sim.Config, error) {
		q := p.Clone()
		q.ArrivalRate = lam / core.Minute
		return sim.Config{Problem: q, Layout: layout, NewScheduler: sched}, nil
	}}
}

// figureSA runs the §4.3 scalable-bit-rate experiment, whose numeric results
// the paper omits for space: simulated annealing over the discrete rate set
// {2, 4, 6, 8} Mb/s on the paper's cluster, reporting the objective
// components before and after annealing and the cost trace.
func figureSA(cfg benchConfig) error {
	cfg.emit.Printf("\n=== §4.3: simulated annealing for scalable encoding bit rates ===\n")
	s := config.Paper()
	s.StorageGB = 50 // fixed storage: the annealer chooses rates vs replicas
	p, err := s.Problem()
	if err != nil {
		return err
	}
	bp := &anneal.BitRateProblem{
		P:       p,
		RateSet: []float64{2 * core.Mbps, 4 * core.Mbps, 6 * core.Mbps, 8 * core.Mbps},
	}
	init, err := bp.InitialSolution()
	if err != nil {
		return err
	}
	initEval := bp.Evaluate(init)

	opts := anneal.DefaultOptions()
	opts.Seed = cfg.seed
	// Delta evaluation made proposals ~80× cheaper (see DESIGN.md §11), so
	// the figure runs a 10×-denser schedule than the scratch path could
	// afford and still finishes faster than it used to.
	opts.PlateauSteps = 2000
	opts.MaxSteps = 0 // run the full cooling schedule (~360k proposals/chain)
	chains := 4
	if cfg.quick {
		opts.MaxSteps = 200_000
		chains = 1
	}
	// The -anneal-* flags override the figure's schedule.
	if cfg.annealSteps > 0 {
		opts.MaxSteps = cfg.annealSteps
	}
	if cfg.annealChains > 0 {
		chains = cfg.annealChains
	}
	if cfg.annealSeed >= 0 {
		opts.Seed = cfg.annealSeed
	}
	best, bestEval, err := bp.Optimize(opts, chains)
	if err != nil {
		return err
	}

	t := report.NewTable("state", "mean rate (Mb/s)", "degree", "imbalance L", "objective", "feasible")
	t.AddRowf("initial (lowest rate, RR)", initEval.MeanRateMbps, initEval.Degree, initEval.Imbalance, initEval.Objective, initEval.Feasible())
	t.AddRowf("annealed", bestEval.MeanRateMbps, bestEval.Degree, bestEval.Imbalance, bestEval.Objective, bestEval.Feasible())
	if err := cfg.emit.Table("sa-scalable-bitrate", t); err != nil {
		return err
	}
	cfg.emit.Printf("copies placed: %d → %d\n", init.TotalCopies(), best.TotalCopies())

	// Simulate the annealed layout end to end and compare with the
	// fixed-rate (4 Mb/s) pipeline on the same storage budget.
	layout, rates, err := bp.Runtime(best)
	if err != nil {
		return err
	}
	saAgg, _, err := sim.RunMany(sim.Config{Problem: p, Layout: layout, CopyRates: rates, Seed: cfg.seed}, cfg.runs)
	if err != nil {
		return err
	}
	fixedScenario := s
	fixedScenario.Replicator, fixedScenario.Placer = "zipf", "slf"
	fixedScenario.Degree = 1.8 // ~ what 50 GB/server holds at 4 Mb/s (18 replicas × 8 / 100 videos)
	fp, flayout, fsched, err := vodcluster.Pipeline(fixedScenario)
	if err != nil {
		return err
	}
	fixedAgg, _, err := sim.RunMany(sim.Config{Problem: fp, Layout: flayout, NewScheduler: fsched, Seed: cfg.seed}, cfg.runs)
	if err != nil {
		return err
	}
	t2 := report.NewTable("simulated layout", "rejected %", "delivered Mb/s", "degree")
	t2.AddRowf("fixed 4 Mb/s (zipf+slf)", 100*fixedAgg.RejectionRate.Mean(), fixedAgg.SessionRateMbps.Mean(), flayout.ReplicationDegree())
	t2.AddRowf("annealed scalable rates", 100*saAgg.RejectionRate.Mean(), saAgg.SessionRateMbps.Mean(), layout.ReplicationDegree())
	cfg.emit.Printf("\n")
	if err := cfg.emit.Table("sa-simulated", t2); err != nil {
		return err
	}
	cfg.emit.Printf("note the objective's shape: Eq. 1 averages quality per *video*, so the\n")
	cfg.emit.Printf("annealer buys high rates where they are bandwidth-cheap — cold titles —\n")
	cfg.emit.Printf("lifting the copy-average rate to 5.6 Mb/s while the request-weighted\n")
	cfg.emit.Printf("delivered rate and the rejection rate stay essentially unchanged; hot\n")
	cfg.emit.Printf("titles keep moderate rates. A per-request quality weighting would shift\n")
	cfg.emit.Printf("rates toward the head instead.\n")

	// Convergence trace of a single chain for the chart.
	res, err := anneal.Minimize[*anneal.BitRateLayout](bp, init, opts)
	if err != nil {
		return err
	}
	xs := make([]float64, len(res.CostTrace))
	ys := make([]float64, len(res.CostTrace))
	for i, c := range res.CostTrace {
		xs[i] = float64(i)
		ys[i] = -c // cost = −objective
	}
	chart := &report.Chart{
		Title:  "SA convergence: objective vs cooling plateau",
		XLabel: "plateau", YLabel: "objective",
	}
	chart.Add(report.Series{Name: "objective", X: xs, Y: ys})
	return cfg.emit.Chart(chart)
}

// figureSensitivity reproduces the §5.2 sensitivity claim: varying the number
// of videos, servers, and the encoding bit rate does not change the relative
// merits of the algorithm combinations.
func figureSensitivity(cfg benchConfig) error {
	cfg.emit.Printf("\n=== §5.2: sensitivity of the algorithm ranking ===\n")
	type variant struct {
		name   string
		mutate func(*config.Scenario)
	}
	variants := []variant{
		{"paper defaults", func(*config.Scenario) {}},
		{"M=50 videos", func(s *config.Scenario) { s.Videos = 50 }},
		{"M=200 videos", func(s *config.Scenario) { s.Videos = 200 }},
		{"N=4 servers", func(s *config.Scenario) { s.Servers = 4; s.LambdaPerMin = 20 }},
		{"N=16 servers", func(s *config.Scenario) { s.Servers = 16; s.LambdaPerMin = 80 }},
		{"2 Mb/s encoding", func(s *config.Scenario) { s.BitRateMbps = 2; s.LambdaPerMin = 80 }},
		{"6 Mb/s encoding", func(s *config.Scenario) { s.BitRateMbps = 6; s.LambdaPerMin = 26.67 }},
		{"60-minute videos", func(s *config.Scenario) { s.DurationMin = 60; s.LambdaPerMin = 60 }},
	}
	if cfg.quick {
		variants = variants[:4]
	}
	t := report.NewTable("variant", "zipf+slf rej %", "class+rr rej %", "zipf+slf wins")
	for _, v := range variants {
		var lambda float64
		series := make([]exp.Series, 0, 2)
		for _, c := range []combo{{"zipf", "slf"}, {"classification", "roundrobin"}} {
			s := config.Paper()
			v.mutate(&s)
			s.Degree = 1.2
			s.Replicator, s.Placer = c.repl, c.plac
			p, layout, sched, err := vodcluster.Pipeline(s)
			if err != nil {
				return fmt.Errorf("sensitivity %q: %w", v.name, err)
			}
			lambda = s.LambdaPerMin
			series = append(series, lambdaSeries(c.String(), p, layout, sched))
		}
		grid, err := cfg.sweep([]float64{lambda}, series).Run()
		if err != nil {
			return err
		}
		rej0, rej1 := exp.RejectionPct(grid[0][0]), exp.RejectionPct(grid[1][0])
		t.AddRowf(v.name, rej0, rej1, rej0 <= rej1)
	}
	return cfg.emit.Table("sensitivity", t)
}

// figureRedirect quantifies the §6 complement: runtime request redirection
// over the internal backbone on top of the conservative placement.
func figureRedirect(cfg benchConfig) error {
	cfg.emit.Printf("\n=== §6: request redirection over the internal backbone ===\n")
	lambdas := lambdaSweep
	if cfg.quick {
		lambdas = lambdaSweepQuick
	}
	series := make([]exp.Series, 0, 2)
	for _, backbone := range []float64{0, 2} {
		s := config.Paper()
		s.Degree = 1.2
		s.BackboneGbps = backbone
		p, layout, sched, err := vodcluster.Pipeline(s)
		if err != nil {
			return err
		}
		name := "static-rr"
		if backbone > 0 {
			name = fmt.Sprintf("static-rr + %g Gb/s backbone", backbone)
		}
		series = append(series, lambdaSeries(name, p, layout, sched))
	}
	sw := cfg.sweep(lambdas, series)
	grid, err := sw.Run()
	if err != nil {
		return err
	}
	t := report.NewTable("λ (req/min)", "no redirect rej %", "redirect rej %", "redirected/run")
	for xi, lam := range lambdas {
		t.AddRowf(lam, exp.RejectionPct(grid[0][xi]), exp.RejectionPct(grid[1][xi]),
			grid[1][xi].Agg.Redirected.Mean())
	}
	if err := cfg.emit.Table("redirect", t); err != nil {
		return err
	}
	chart := sw.Chart(grid,
		"Request redirection: rejection rate (%) with and without backbone",
		"arrival rate (req/min)", "rejection rate (%)", exp.RejectionPct)
	return cfg.emit.Chart(chart)
}
