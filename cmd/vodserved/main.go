// Command vodserved is the live cluster dispatch daemon: it loads a layout
// (computed by the replicate/place pipeline from a scenario, or replayed
// from a plan written by vodplace -out), tracks per-backend outgoing
// bandwidth with lock-free atomic accounting, and admits/rejects/redirects
// session requests over HTTP through the configured scheduling policy.
//
//	vodserved -addr :8370                          # paper-default layout
//	vodserved -scenario scenario.json -policy sim:static-rr
//	vodserved -plan plan.json -compress 60         # 1 video-minute per second
//
// Endpoints: POST /session?video=V, DELETE /session/{id},
// POST /open, /open/batch, /close (body-first admission hot path),
// POST /backend/{id}/drain, POST /backend/{id}/restore, GET /metrics
// (Prometheus text), GET /healthz, GET /layout. SIGTERM/SIGINT drain the
// daemon gracefully: new sessions are refused while active ones run out,
// bounded by -drain-timeout.
//
// High-throughput ingress (DESIGN.md §16): -listeners N fronts the daemon
// with N SO_REUSEPORT accept loops running an allocation-free HTTP/1.1
// admission path (keep-alive, pipelining, batched opens capped by -batch);
// every non-admission route falls back to the regular handler stack.
// Per-listener counters and latency histograms render as vod_http_* in
// /metrics.
//
// Observability: -pprof (default on) mounts the net/http/pprof profiling
// endpoints under /debug/pprof/; -trace N enables the session tracer with
// an N-event ring buffer, dumpable at GET /debug/trace (?format=chrome for
// a chrome://tracing / Perfetto-loadable file) — see DESIGN.md §10.
//
// Failure handling (DESIGN.md §12): -faults replays a scripted fault
// schedule (crash/recover/slow/drain/restore events at virtual times)
// against the daemon's own backends; -health-interval starts the
// health-check loop that confirms crashes and promotes recovering backends
// through probation; -repair starts the automatic re-replication repairer;
// -retry enables admission retry-with-backoff. POST /backend/{id}/fail,
// POST /backend/{id}/recover, and POST /fault inject the same faults over
// HTTP.
//
// Online rebalancing (DESIGN.md §14): -rebalance starts the placement
// controller, which re-estimates per-video popularity from the admission
// stream, periodically re-anneals the layout, and migrates replicas under
// the -rebalance-budget bandwidth cap. GET /rebalance reports its status and
// journal; POST /rebalance/trigger forces an immediate round.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vodcluster"
	"vodcluster/internal/config"
	"vodcluster/internal/core"
	"vodcluster/internal/faults"
	"vodcluster/internal/obs"
	"vodcluster/internal/policy"
	"vodcluster/internal/rebalance"
	"vodcluster/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vodserved:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:8370", "listen address")
	scenarioPath := flag.String("scenario", "", "JSON scenario file; empty uses the paper defaults")
	planPath := flag.String("plan", "", "replay a plan written by vodplace -out instead of recomputing the layout")
	policyName := flag.String("policy", "least-loaded", fmt.Sprintf("admission policy: one of %v", serve.PolicyNames()))
	listPolicies := flag.Bool("list-policies", false, "print the admission-policy registry and exit")
	compress := flag.Float64("compress", 1, "time-compression factor: a D-second video holds bandwidth for D/compress wall seconds")
	shards := flag.Int("shards", 1, "admission dispatch shards (DESIGN.md §15); 1 runs the single-queue engine, >1 partitions backends across shard owners for multi-core admission")
	listeners := flag.Int("listeners", 0, "sharded SO_REUSEPORT ingress accept loops (DESIGN.md §16); 0 serves the plain net/http mux")
	maxBatch := flag.Int("batch", 0, "max videos per POST /open/batch request (0 = default 256)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for active sessions")
	pprofOn := flag.Bool("pprof", true, "mount the net/http/pprof profiling endpoints under /debug/pprof/")
	traceEvents := flag.Int("trace", 0, "enable session tracing with a ring buffer of this many events (0 = off); dump at GET /debug/trace")
	faultsPath := flag.String("faults", "", "replay this JSON fault schedule (crash/recover/slow/drain/restore at virtual times) against the daemon's backends")
	healthInterval := flag.Duration("health-interval", 0, "health-probe cadence per backend; 0 disables the health checker")
	healthFail := flag.Int("health-fail-threshold", 0, "consecutive probe failures that confirm a crash (0 = default 3)")
	healthRecover := flag.Int("health-recover-threshold", 0, "consecutive clean probes that promote a suspect/recovering backend to up (0 = default 2)")
	retryOn := flag.Bool("retry", false, "enable admission retry-with-backoff (simulator resilience defaults: base 5s, factor 2, patience 120s, all virtual time)")
	repairOn := flag.Bool("repair", false, "enable automatic re-replication of under-replicated videos after a backend crash")
	repairBudget := flag.Float64("repair-budget", 0, "cap on total concurrent repair-copy bandwidth, bits/s (0 = per-copy reservations only)")
	rebalanceOn := flag.Bool("rebalance", false, "enable the online placement rebalancer (re-anneals the layout from admission telemetry and migrates replicas)")
	rebalanceInterval := flag.Float64("rebalance-interval", 0, "rebalance control-round cadence in virtual seconds (0 = default 300)")
	rebalanceBudget := flag.Float64("rebalance-budget", 0, "cap on total concurrent migration-copy bandwidth, bits/s (0 = per-copy reservations only)")
	rebalanceCopyRate := flag.Float64("rebalance-copy-rate", 0, "bandwidth one migration copy consumes, bits/s (0 = default 200 Mb/s)")
	rebalanceMaxMoves := flag.Int("rebalance-max-moves", 0, "max adds and max evictions per rebalance round (0 = default 8)")
	rebalanceAnnealSteps := flag.Int("rebalance-anneal-steps", 0, "annealing steps per rebalance round (0 = default 4000)")
	rebalanceMinObserved := flag.Float64("rebalance-min-observed", 0, "decayed observation mass below which a round skips (0 = default 50)")
	rebalanceSeed := flag.Int64("rebalance-seed", 0, "seed of the per-round annealing RNG streams (0 = default 1)")
	flag.Parse()

	if *listPolicies {
		fmt.Print("Admission policies (shared registry, internal/policy):\n\n", policy.ServeList())
		return nil
	}

	p, layout, err := loadLayout(*scenarioPath, *planPath)
	if err != nil {
		return err
	}
	var tracer *obs.Tracer
	if *traceEvents > 0 {
		tracer = obs.NewTracer(*traceEvents)
	}
	cfg := serve.Config{Policy: *policyName, Compress: *compress, Tracer: tracer, Shards: *shards}
	if *retryOn {
		cfg.Retry = &serve.RetryConfig{}
	}
	srv, err := serve.New(p, layout, cfg)
	if err != nil {
		return err
	}

	// The injector is always attached: it is what makes injected crashes
	// observable to health probes and slow faults expressible at all.
	injector := faults.NewInjector()
	srv.AttachInjector(injector)
	if *healthInterval > 0 {
		hc := serve.NewHealthChecker(srv, injector, serve.HealthConfig{
			Interval:         *healthInterval,
			FailThreshold:    *healthFail,
			RecoverThreshold: *healthRecover,
		})
		hc.Start()
		c := hc.Config()
		log.Printf("vodserved: health checker probing every %s (fail threshold %d, recover threshold %d)",
			c.Interval, c.FailThreshold, c.RecoverThreshold)
	}
	if *repairOn {
		rep, err := serve.NewRepairer(srv, serve.RepairConfig{Budget: *repairBudget})
		if err != nil {
			return err
		}
		rep.Start()
		log.Printf("vodserved: re-replication repairer started (budget %g bit/s)", *repairBudget)
	}
	if *rebalanceOn {
		ctl, err := rebalance.New(srv, rebalance.Config{
			Interval:         *rebalanceInterval,
			Budget:           *rebalanceBudget,
			CopyRate:         *rebalanceCopyRate,
			MaxMovesPerRound: *rebalanceMaxMoves,
			AnnealSteps:      *rebalanceAnnealSteps,
			MinObserved:      *rebalanceMinObserved,
			Seed:             *rebalanceSeed,
		})
		if err != nil {
			return err
		}
		ctl.Start() // attaches to srv; srv.Shutdown stops it
		log.Printf("vodserved: rebalancer started (interval %gs virtual, budget %g bit/s)",
			ctl.Config().Interval, ctl.Config().Budget)
	}
	var sched *faults.Schedule
	if *faultsPath != "" {
		f, err := os.Open(*faultsPath)
		if err != nil {
			return err
		}
		sched, err = faults.Load(f)
		f.Close()
		if err != nil {
			return err
		}
		if err := sched.Validate(p.N()); err != nil {
			return err
		}
	}

	handler := obs.Middleware(tracer, srv.Handler())
	if *pprofOn {
		handler = withPprof(handler)
	}

	// Two fronts share the drain flow below: the sharded ingress (DESIGN.md
	// §16) or the plain net/http server. stopServing tears down whichever
	// one ran, after the sessions drained.
	errCh := make(chan error, 1)
	var stopServing func() error
	if *listeners > 0 {
		ing, err := serve.NewIngress(srv, serve.IngressConfig{
			Listeners: *listeners, MaxBatch: *maxBatch, Fallback: handler,
		})
		if err != nil {
			return err
		}
		iaddr, err := ing.Start(*addr)
		if err != nil {
			return err
		}
		log.Printf("vodserved: serving %d videos on %d backends at %s (policy %s, compress %gx, %d shards, %d ingress listeners)",
			p.M(), p.N(), iaddr, srv.PolicyName(), srv.Compress(), srv.Shards(), *listeners)
		stopServing = func() error { ing.Close(); return nil }
	} else {
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: handler}
		go func() { errCh <- hs.Serve(ln) }()
		log.Printf("vodserved: serving %d videos on %d backends at %s (policy %s, compress %gx, %d shards)",
			p.M(), p.N(), ln.Addr(), srv.PolicyName(), srv.Compress(), srv.Shards())
		stopServing = func() error {
			shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
				return err
			}
			<-errCh // Serve has returned ErrServerClosed
			return nil
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if sched != nil {
		log.Printf("vodserved: replaying %d scripted fault events at %gx compression", len(sched.Events), srv.Compress())
		go func() {
			err := sched.Run(ctx, srv.Compress(), func(e faults.Event) error {
				log.Printf("vodserved: fault: %s backend %d (t=%gs)", e.Action, e.Backend, e.At)
				return srv.ApplyFault(e)
			})
			if err != nil {
				log.Printf("vodserved: fault schedule: %v", err)
			}
		}()
	}
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	log.Printf("vodserved: draining %d active sessions (timeout %s)", srv.Active(), *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		log.Printf("vodserved: %v", err)
	}
	srv.Shutdown() // stop the health-check and repair loops

	if err := stopServing(); err != nil {
		return err
	}
	log.Printf("vodserved: drained; bye")
	return nil
}

// withPprof mounts the net/http/pprof handlers in front of the API handler.
// The daemon uses its own ServeMux, so the pprof routes are registered
// explicitly rather than through the package's DefaultServeMux side effect.
func withPprof(next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", next)
	return mux
}

// loadLayout materializes the problem/layout pair: a persisted plan wins,
// then a scenario run through the replicate/place pipeline, then the paper
// defaults.
func loadLayout(scenarioPath, planPath string) (*core.Problem, *core.Layout, error) {
	if planPath != "" {
		f, err := os.Open(planPath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		plan, err := config.LoadPlan(f)
		if err != nil {
			return nil, nil, err
		}
		p, layout, err := plan.Layout()
		return p, layout, err
	}
	s := config.Paper()
	if scenarioPath != "" {
		f, err := os.Open(scenarioPath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		if s, err = config.Load(f); err != nil {
			return nil, nil, err
		}
	}
	p, layout, _, err := vodcluster.Pipeline(s)
	return p, layout, err
}
