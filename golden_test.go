package vodcluster_test

// Golden pin of one full figure table: Fig. 4(a) in vodbench's -quick -seed 42
// configuration. The file testdata/fig4a_quick.golden was captured from the
// pre-harness sequential sweep loops; the exp-harness reproduction must stay
// byte-identical, so any change to seed derivation, event ordering, or table
// formatting fails here before it silently shifts every figure.

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"vodcluster"
	"vodcluster/internal/config"
	"vodcluster/internal/core"
	"vodcluster/internal/exp"
	"vodcluster/internal/sim"
)

func TestFigure4QuickGolden(t *testing.T) {
	// vodbench -fig 4 -quick -seed 42, subplot (a): zipf+slf at θ=0.75,
	// degrees {1.0, 1.4, 2.0}, λ ∈ {16, 32, 40}, 5 replications per point.
	degrees := []float64{1.0, 1.4, 2.0}
	series := make([]exp.Series, 0, len(degrees))
	headers := []string{"λ (req/min)"}
	for _, degree := range degrees {
		s := config.Paper()
		s.Theta = 0.75
		s.Degree = degree
		s.Replicator, s.Placer = "zipf", "slf"
		p, layout, sched, err := vodcluster.Pipeline(s)
		if err != nil {
			t.Fatal(err)
		}
		series = append(series, exp.Series{
			Name: fmt.Sprintf("deg %.1f", degree),
			Config: func(lam float64) (sim.Config, error) {
				q := p.Clone()
				q.ArrivalRate = lam / core.Minute
				return sim.Config{Problem: q, Layout: layout, NewScheduler: sched}, nil
			},
		})
		headers = append(headers, fmt.Sprintf("deg %.1f (%%)", degree))
	}
	sweep := &exp.Sweep{Xs: []float64{16, 32, 40}, Series: series, Runs: 5, Seed: 42}
	grid, err := sweep.Run()
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := sweep.Table(grid, headers[0], exp.RejectionPct, headers).Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/fig4a_quick.golden")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("Fig. 4(a) quick table diverged from the golden capture.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}
