// Package vodcluster is the public face of a reproduction of Zhou & Xu,
// "Optimal Video Replication and Placement on a Cluster of Video-on-Demand
// Servers" (ICPP 2002). It wires the building blocks — replication
// (internal/replicate), placement (internal/place), the cluster runtime
// (internal/cluster), and the discrete-event simulator (internal/sim) — into
// the end-to-end pipeline the paper evaluates:
//
//	problem → replica counts → placement → simulated peak period → metrics
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every figure.
package vodcluster

import (
	"errors"
	"fmt"

	"vodcluster/internal/cluster"
	"vodcluster/internal/config"
	"vodcluster/internal/core"
	"vodcluster/internal/exp"
	"vodcluster/internal/metrics"
	"vodcluster/internal/place"
	"vodcluster/internal/policy"
	"vodcluster/internal/replicate"
	"vodcluster/internal/sim"
)

// Replicators returns every replication algorithm, paper algorithms first.
func Replicators() []replicate.Replicator {
	return []replicate.Replicator{
		replicate.BoundedAdams{},
		replicate.ZipfInterval{},
		replicate.Classification{},
		replicate.Uniform{},
	}
}

// ReplicatorByName resolves adams | zipf | classification | uniform.
func ReplicatorByName(name string) (replicate.Replicator, error) {
	for _, r := range Replicators() {
		if r.Name() == name {
			return r, nil
		}
	}
	return nil, fmt.Errorf("vodcluster: unknown replicator %q (want adams, zipf, classification, or uniform)", name)
}

// Placers returns every placement algorithm: the paper's two first, then the
// ablation variants and the heterogeneous-cluster extensions.
func Placers() []place.Placer {
	return []place.Placer{
		place.SmallestLoadFirst{},
		place.RoundRobin{},
		place.Greedy{},
		place.Random{Seed: 1},
		place.WeightedSLF{},
		place.BSR{},
	}
}

// PlacerByName resolves slf | roundrobin | greedy | random | wslf | bsr.
func PlacerByName(name string) (place.Placer, error) {
	for _, p := range Placers() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("vodcluster: unknown placer %q (want slf, roundrobin, greedy, random, wslf, or bsr)", name)
}

// SchedulerFactory resolves a scheduling policy name to a per-run
// constructor through the shared policy registry (internal/policy).
// withRedirect wraps the base policy with backbone request redirection
// (meaningful only when the problem defines backbone bandwidth).
func SchedulerFactory(name string, withRedirect bool) (func() cluster.Scheduler, error) {
	f, err := policy.SchedulerFactory(name, withRedirect)
	if err != nil {
		return nil, fmt.Errorf("vodcluster: %w", err)
	}
	return f, nil
}

// BuildLayout runs replication then placement for the target replication
// degree and returns a validated layout.
func BuildLayout(p *core.Problem, r replicate.Replicator, pl place.Placer, degree float64) (*core.Layout, error) {
	budget, err := p.TargetTotalReplicas(degree)
	if err != nil {
		return nil, err
	}
	replicas, err := r.Replicate(p, budget)
	if err != nil {
		return nil, err
	}
	layout, err := pl.Place(p, replicas)
	if err != nil {
		return nil, err
	}
	if err := layout.Validate(p); err != nil {
		return nil, err
	}
	return layout, nil
}

// Pipeline materializes a scenario: the problem, the layout produced by the
// scenario's replication/placement pair, and the scheduler factory.
func Pipeline(s config.Scenario) (*core.Problem, *core.Layout, func() cluster.Scheduler, error) {
	p, err := s.Problem()
	if err != nil {
		return nil, nil, nil, err
	}
	r, err := ReplicatorByName(s.Replicator)
	if err != nil {
		return nil, nil, nil, err
	}
	pl, err := PlacerByName(s.Placer)
	if err != nil {
		return nil, nil, nil, err
	}
	layout, err := BuildLayout(p, r, pl, s.Degree)
	if err != nil {
		return nil, nil, nil, err
	}
	sched, err := SchedulerFactory(s.Scheduler, p.BackboneBandwidth > 0)
	if err != nil {
		return nil, nil, nil, err
	}
	return p, layout, sched, nil
}

// SweepPoint is one x-position of a rejection-rate or imbalance curve.
type SweepPoint struct {
	// LambdaPerMin is the arrival rate in requests per minute.
	LambdaPerMin float64
	// Agg aggregates the replicated simulation runs at this rate.
	Agg *metrics.Aggregate
}

// SweepArrivalRates simulates the layout under each arrival rate (requests
// per minute) with `runs` replications per point. The layout is computed
// once, for the peak rate, exactly as the paper's conservative model
// prescribes — replication and placement decisions do not depend on λ, only
// the runtime load does.
func SweepArrivalRates(p *core.Problem, layout *core.Layout, newSched func() cluster.Scheduler,
	lambdasPerMin []float64, runs int, seed int64) ([]SweepPoint, error) {
	s := &exp.Sweep{
		Xs: lambdasPerMin,
		Series: []exp.Series{{Name: "sweep", Config: func(lam float64) (sim.Config, error) {
			q := p.Clone()
			q.ArrivalRate = lam / core.Minute
			return sim.Config{Problem: q, Layout: layout, NewScheduler: newSched}, nil
		}}},
		Runs: runs,
		Seed: seed,
	}
	grid, err := s.Run()
	if err != nil {
		var re *exp.RunError
		if errors.As(err, &re) {
			return nil, fmt.Errorf("vodcluster: sweep at λ=%g/min: %w", re.X, re.Err)
		}
		return nil, fmt.Errorf("vodcluster: sweep: %w", err)
	}
	points := make([]SweepPoint, 0, len(lambdasPerMin))
	for _, pt := range grid[0] {
		points = append(points, SweepPoint{LambdaPerMin: pt.X, Agg: pt.Agg})
	}
	return points, nil
}
