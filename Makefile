GO ?= go
# The gate targets pipe through tee to keep compare reports as CI artifacts;
# pipefail makes the pipeline exit with the gate's status, not tee's.
SHELL := bash
.SHELLFLAGS := -o pipefail -c

# Fuzzing time per target; the nightly workflow raises this to 60s.
FUZZTIME ?= 30s
# Where serve-smoke writes its benchmark record. CI points this at a temp
# path so the checked-in baseline is never overwritten by a workflow run.
SERVE_BENCH ?= BENCH_serve.json
# Perf-gate knobs: fresh records land under PERF_OUT and are compared
# against the checked-in baselines at PERF_TOLERANCE relative worsening
# (plus the noise margin vodperf derives from the samples).
PERF_OUT ?= /tmp/vodperf
PERF_TOLERANCE ?= 0.10
# Scale-gate knobs: the sweep stops at SCALE_MAX cores (the CI matrix runs
# legs at 1 and 4) and requires MIN_SPEEDUP× decisions/s at GOMAXPROCS=4
# over 1 whenever the host actually has 4 CPUs.
SCALE_MAX ?= 4
MIN_SPEEDUP ?= 2.5
# Ingress-gate knob: batched HTTP admission through the sharded ingress must
# reach at least this multiple of the baseline's open-loop
# serve_decisions_per_sec on the same core count (DESIGN.md §16).
MIN_HTTP_MULT ?= 10
# Static-analysis tool pins; the targets run them via `go run pkg@version`,
# so the module cache (restored by CI) is the only install step.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: all build test race cover bench bench-smoke serve-smoke chaos-smoke regret-smoke rebalance-smoke perf perf-gate scale-gate ingress-gate staticcheck govulncheck figures figures-smoke examples fuzz clean ci fmt-check

all: build test

# Everything the CI workflow runs: formatting, build+vet, tests, race,
# the one-iteration benchmark smoke pass, the live-serving smoke, the
# fault-injection chaos smoke, the counterfactual-harness smoke, and the
# demand-drift rebalancing smoke.
ci: fmt-check build test race bench-smoke serve-smoke chaos-smoke regret-smoke rebalance-smoke

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=cover.out ./internal/... .
	$(GO) tool cover -func=cover.out | tail -1

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of the Fig. 4 benchmarks: catches bit-rot in the bench code
# and the exp sweep harness without paying for a full benchmark run.
bench-smoke:
	$(GO) test -run='^$$' -bench=Fig4 -benchtime=1x .

# Boot the live daemon in-process, fire a 1-second 8000 req/s burst through
# the open-loop load generator while the scripted fault schedule crashes and
# recovers a backend mid-trace, scrape /metrics for non-zero admissions,
# cross-validate the rejection rate (overall and post-failure) against
# sim.Run with the same scripted failures, and record throughput plus
# admission-latency percentiles in $(SERVE_BENCH). GOMAXPROCS is pinned to 1
# so the recorded flat metrics carry the same core count as the checked-in
# baseline — vodperf -compare refuses cross-core-count comparisons.
serve-smoke:
	GOMAXPROCS=1 $(GO) run ./cmd/vodload -selftest -rate 8000 -burst 1 -validate -faults testdata/faults_smoke.json -bench-out $(SERVE_BENCH)

# The failure-drill integration test under the race detector: a scripted
# mid-trace crash with health checking, admission retry, and automatic
# re-replication, asserting single settlement, zero leaked bandwidth, and
# live-vs-sim post-failure parity.
chaos-smoke:
	$(GO) test -race -run 'TestChaos' -v .

# The counterfactual-harness self-check: a tiny two-policy lockstep over one
# shared trace. -smoke asserts the reference compared against itself yields
# exactly zero divergences and zero regret, and that the genuinely different
# candidate diverges at least once — the invariants vodab's scoring leans on.
regret-smoke:
	$(GO) run ./cmd/vodab -policies static-rr,least-loaded -lambda 60 -runs 2 -smoke > /dev/null

# The demand-drift drill under the race detector: the same mid-trace
# popularity rotation replayed against a static daemon and one running the
# online placement rebalancer, asserting the rebalancer migrates replicas
# toward the shifted head, lowers post-shift rejections, stays inside its
# copy-bandwidth budget, and leaks nothing after the drain.
rebalance-smoke:
	$(GO) test -race -run 'TestRebalance' -v .

# Re-measure the canonical benchmarks (Fig. 4 quick sweep + serve burst)
# and refresh the checked-in multi-run baseline. Pinned to one core like
# perf-gate's fresh measurements: the baseline must carry the core count the
# gate measures at, or the comparison refuses it.
perf:
	GOMAXPROCS=1 $(GO) run ./cmd/vodperf -runs 5 -out BENCH_perf.json

# The CI performance gate: measure fresh records into $(PERF_OUT) and
# compare them against the checked-in baselines. Exits nonzero when a gated
# metric is more than $(PERF_TOLERANCE) + noise margin worse. The fresh
# measurements run at GOMAXPROCS=1 to match the core count the baselines
# were recorded at (the comparison refuses a mismatch); compare reports are
# kept under $(PERF_OUT) so CI can attach them as artifacts. The serve
# comparison excludes the baseline's scale_* and http_* metrics — those
# sections belong to scale-gate and ingress-gate, and a serve-smoke record
# legitimately carries neither. The allocation guard asserts the zero-alloc
# admission contract before any throughput is measured.
perf-gate:
	mkdir -p $(PERF_OUT)
	GOMAXPROCS=1 $(GO) test -run TestAdmissionPathAllocs -count=1 ./internal/serve/
	GOMAXPROCS=1 $(GO) run ./cmd/vodload -selftest -rate 8000 -burst 1 -faults testdata/faults_smoke.json -bench-out $(PERF_OUT)/BENCH_serve.json
	GOMAXPROCS=1 $(GO) run ./cmd/vodperf -runs 3 -out $(PERF_OUT)/BENCH_perf.json
	$(GO) run ./cmd/vodperf -compare BENCH_serve.json $(PERF_OUT)/BENCH_serve.json -tolerance $(PERF_TOLERANCE) -exclude scale_,http_ | tee $(PERF_OUT)/compare_serve.txt
	$(GO) run ./cmd/vodperf -compare BENCH_perf.json $(PERF_OUT)/BENCH_perf.json -tolerance $(PERF_TOLERANCE) | tee $(PERF_OUT)/compare_perf.txt

# The multi-core scaling gate (DESIGN.md §15): sweep the sharded dispatch
# engine across GOMAXPROCS ∈ {1, 4, 16} up to $(SCALE_MAX), enforce the
# ≥$(MIN_SPEEDUP)× decisions/s contract at 4 cores whenever the host has
# them (levels above the host's CPU count are recorded hw_capped, never
# gated), and compare the sweep against the checked-in scaling section of
# BENCH_serve.json at the usual tolerance.
scale-gate:
	mkdir -p $(PERF_OUT)
	$(GO) run ./cmd/vodperf -bench scale -runs 3 -scale-max $(SCALE_MAX) -min-speedup $(MIN_SPEEDUP) -out $(PERF_OUT)/BENCH_scale.json
	$(GO) run ./cmd/vodperf -compare BENCH_serve.json $(PERF_OUT)/BENCH_scale.json -tolerance $(PERF_TOLERANCE) -metrics scale_ | tee $(PERF_OUT)/compare_scale.txt

# The HTTP ingress gate (DESIGN.md §16): the alloc guard first, then a
# closed-loop benchmark of the sharded zero-alloc admission path — batched
# and single round trips over persistent fast connections — pinned to one
# core like every other gated measurement. The run itself enforces
# ≥$(MIN_HTTP_MULT)× the checked-in baseline's open-loop
# serve_decisions_per_sec, and the record is additionally compared against
# the baseline's http_* metrics when the baseline carries them.
ingress-gate:
	mkdir -p $(PERF_OUT)
	GOMAXPROCS=1 $(GO) test -run TestAdmissionPathAllocs -count=1 ./internal/serve/
	GOMAXPROCS=1 $(GO) run ./cmd/vodperf -bench http -runs 3 -min-http-mult $(MIN_HTTP_MULT) -http-baseline BENCH_serve.json -out $(PERF_OUT)/BENCH_http.json | tee $(PERF_OUT)/ingress_report.txt
	$(GO) run ./cmd/vodperf -compare BENCH_serve.json $(PERF_OUT)/BENCH_http.json -tolerance $(PERF_TOLERANCE) -metrics http_ | tee $(PERF_OUT)/compare_http.txt

# Static analysis beyond go vet, at pinned tool versions. Both tools resolve
# through the Go module cache, so CI's setup-go cache makes repeat runs
# cheap; neither is vendored into the tree.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

govulncheck:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

# Regenerate every paper figure (tables + ASCII charts + CSV series).
figures:
	$(GO) run ./cmd/vodbench -fig all -runs 20 -csv results/csv | tee results/vodbench-full.txt

# Nightly smoke of the figure generators: every figure once, one
# replication per point, no artifacts written into the tree.
figures-smoke:
	$(GO) run ./cmd/vodbench -fig all -runs 1

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/placement-planner
	$(GO) run ./examples/rejection-sweep
	$(GO) run ./examples/scalable-bitrate
	$(GO) run ./examples/failure-recovery
	$(GO) run ./examples/dynamic-replication
	$(GO) run ./examples/hierarchical-sites

fuzz:
	$(GO) test -run=Fuzz -fuzz=FuzzLoad -fuzztime=$(FUZZTIME) ./internal/config/
	$(GO) test -run=Fuzz -fuzz=FuzzTraceLoad -fuzztime=$(FUZZTIME) ./internal/workload/
	$(GO) test -run=Fuzz -fuzz=FuzzApportion -fuzztime=$(FUZZTIME) ./internal/apportion/
	$(GO) test -run=Fuzz -fuzz=FuzzWireParse -fuzztime=$(FUZZTIME) ./internal/serve/
	$(GO) test -run=Fuzz -fuzz=FuzzIngressConn -fuzztime=$(FUZZTIME) ./internal/serve/

clean:
	rm -f cover.out
