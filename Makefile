GO ?= go

.PHONY: all build test race cover bench bench-smoke serve-smoke figures examples fuzz clean ci fmt-check

all: build test

# Everything the CI workflow runs: formatting, build+vet, tests, race,
# the one-iteration benchmark smoke pass, and the live-serving smoke.
ci: fmt-check build test race bench-smoke serve-smoke

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=cover.out ./internal/... .
	$(GO) tool cover -func=cover.out | tail -1

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of the Fig. 4 benchmarks: catches bit-rot in the bench code
# and the exp sweep harness without paying for a full benchmark run.
bench-smoke:
	$(GO) test -run='^$$' -bench=Fig4 -benchtime=1x .

# Boot the live daemon in-process, fire a 1-second 8000 req/s burst through
# the open-loop load generator, scrape /metrics for non-zero admissions,
# cross-validate the rejection rate against sim.Run, and record throughput
# plus admission-latency percentiles in BENCH_serve.json.
serve-smoke:
	$(GO) run ./cmd/vodload -selftest -rate 8000 -burst 1 -validate -bench-out BENCH_serve.json

# Regenerate every paper figure (tables + ASCII charts + CSV series).
figures:
	$(GO) run ./cmd/vodbench -fig all -runs 20 -csv results/csv | tee results/vodbench-full.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/placement-planner
	$(GO) run ./examples/rejection-sweep
	$(GO) run ./examples/scalable-bitrate
	$(GO) run ./examples/failure-recovery
	$(GO) run ./examples/dynamic-replication
	$(GO) run ./examples/hierarchical-sites

fuzz:
	$(GO) test -run=Fuzz -fuzz=FuzzLoad -fuzztime=30s ./internal/config/
	$(GO) test -run=Fuzz -fuzz=FuzzTraceLoad -fuzztime=30s ./internal/workload/
	$(GO) test -run=Fuzz -fuzz=FuzzApportion -fuzztime=30s ./internal/apportion/

clean:
	rm -f cover.out
