package vodcluster_test

import (
	"context"
	"math"
	"net/http/httptest"
	"testing"

	"vodcluster"
	"vodcluster/internal/cluster"
	"vodcluster/internal/config"
	"vodcluster/internal/core"
	"vodcluster/internal/serve"
	"vodcluster/internal/sim"
	"vodcluster/internal/workload"
)

// replayAgainstLive boots an in-process daemon for the problem/layout pair,
// replays the trace through vodload's client library, and returns the
// replay report.
func replayAgainstLive(t *testing.T, p *core.Problem, layout *core.Layout,
	policy string, tr *workload.Trace, compress float64) *serve.Report {
	t.Helper()
	srv, err := serve.New(p, layout, serve.Config{Policy: policy, Compress: compress})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer srv.Shutdown()

	rep, err := serve.NewClient(hs.URL).Replay(context.Background(), tr, compress)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors > 0 {
		t.Fatalf("%d transport errors during replay; first: %v", rep.Errors, rep.FirstError)
	}
	if rep.Requests != len(tr.Requests) {
		t.Fatalf("replay settled %d of %d requests", rep.Requests, len(tr.Requests))
	}
	return rep
}

// TestLiveMatchesSimOnSaturatedTrace cross-validates the serving layer on a
// deliberately overloaded micro-cluster: a 200-request trace against 20
// stream slots, so most requests are rejected and the live daemon's
// rejection rate must land within ±2 percentage points of sim.Run on the
// identical trace.
func TestLiveMatchesSimOnSaturatedTrace(t *testing.T) {
	catalog := make(core.Catalog, 5)
	for v := range catalog {
		catalog[v] = core.Video{ID: v, Popularity: 0.2, BitRate: 4 * core.Mbps, Duration: 90 * core.Minute}
	}
	p := &core.Problem{
		Catalog:            catalog,
		NumServers:         2,
		StoragePerServer:   5 * catalog[0].SizeBytes(),
		BandwidthPerServer: 40 * core.Mbps, // 10 slots per server
		ArrivalRate:        200.0 / (90 * core.Minute),
		PeakPeriod:         90 * core.Minute,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	layout := core.NewLayout(len(catalog))
	layout.Replicas = []int{2, 2, 2, 2, 2}
	for v := range catalog {
		for s := 0; s < 2; s++ {
			if err := layout.Place(v, s); err != nil {
				t.Fatal(err)
			}
		}
	}

	gen, err := workload.NewGenerator(workload.Poisson{Lambda: p.ArrivalRate}, p.M(), 0.75)
	if err != nil {
		t.Fatal(err)
	}
	tr := gen.Generate(p.PeakPeriod, 42)
	if n := len(tr.Requests); n < 150 || n > 250 {
		t.Fatalf("trace has %d requests, want ≈200", n)
	}

	simRes, err := sim.Run(sim.Config{
		Problem:      p,
		Layout:       layout,
		NewScheduler: func() cluster.Scheduler { return cluster.LeastLoaded{} },
		Trace:        tr,
		Duration:     tr.Meta.Duration,
	})
	if err != nil {
		t.Fatal(err)
	}
	if simRes.RejectionRate < 0.5 {
		t.Fatalf("simulated rejection rate %.2f; the scenario is not saturated enough to exercise rejection", simRes.RejectionRate)
	}

	// 5400 virtual seconds in ~1.1 s of wall time.
	rep := replayAgainstLive(t, p, layout, "least-loaded", tr, 5000)

	livePct := 100 * rep.RejectionRate()
	simPct := 100 * simRes.RejectionRate
	if delta := math.Abs(livePct - simPct); delta > 2 {
		t.Fatalf("live rejection %.2f%% vs simulated %.2f%%: |Δ| = %.2f points exceeds 2", livePct, simPct, delta)
	}
}

// TestLiveMatchesSimAtPaperOperatingPoint is the acceptance gate on the
// paper's Fig. 4 default operating point (λ = 40 req/min, degree 1.2,
// zipf + slf + static-rr): a full 90-minute peak-period trace replayed
// against the live daemon must reproduce the simulated rejection rate
// within ±2 percentage points.
func TestLiveMatchesSimAtPaperOperatingPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("3600-request live replay; skipped in -short mode")
	}
	s := config.Paper()
	p, layout, sched, err := vodcluster.Pipeline(s)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(workload.NewPoissonPerMinute(s.LambdaPerMin), p.M(), s.Theta)
	if err != nil {
		t.Fatal(err)
	}
	tr := gen.Generate(p.PeakPeriod, s.Seed)

	simRes, err := sim.Run(sim.Config{
		Problem:      p,
		Layout:       layout,
		NewScheduler: sched,
		Trace:        tr,
		Duration:     tr.Meta.Duration,
	})
	if err != nil {
		t.Fatal(err)
	}

	// 5400 virtual seconds in ~2 s of wall time; the daemon runs the same
	// static-rr policy the scenario's scheduler names.
	rep := replayAgainstLive(t, p, layout, s.Scheduler, tr, 2700)

	livePct := 100 * rep.RejectionRate()
	simPct := 100 * simRes.RejectionRate
	if delta := math.Abs(livePct - simPct); delta > 2 {
		t.Fatalf("live rejection %.2f%% vs simulated %.2f%%: |Δ| = %.2f points exceeds 2", livePct, simPct, delta)
	}
	t.Logf("live %.2f%% vs sim %.2f%% over %d requests", livePct, simPct, rep.Requests)
}
